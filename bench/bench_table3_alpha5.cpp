// Regenerates paper Table 3: alpha^5_i / 2 for all 21 5-node graphlets
// under SRW(1..4), computed with Algorithm 2. Rows SRW1..SRW3 reproduce
// the published table exactly; the SRW4 row flags the five published
// entries that contradict the paper's own Appendix B closed form
// alpha = |S|(|S|-1) (documented errata, see EXPERIMENTS.md).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/alpha.h"
#include "core/paper_ids.h"
#include "graphlet/catalog.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const auto& order = grw::PaperOrder(5);
  const auto& paper = grw::PaperAlphaHalfTable(5);
  const auto& catalog = grw::GraphletCatalog::ForSize(5);

  grw::Table table("Table 3: coefficient alpha^5_i / 2 for 5-node graphlets");
  std::vector<std::string> header = {"Walk"};
  for (int pos = 0; pos < 21; ++pos) {
    header.push_back(std::to_string(pos + 1));
  }
  table.SetHeader(header);

  int mismatch_123 = 0;
  int errata_4 = 0;
  for (int d = 1; d <= 4; ++d) {
    std::vector<std::string> row = {"SRW(" + std::to_string(d) + ")"};
    for (int pos = 0; pos < 21; ++pos) {
      const int64_t computed = grw::Alpha(catalog.Get(order[pos]), d) / 2;
      const int64_t published = paper[d - 1][pos];
      std::string cell = grw::Table::Int(computed);
      if (computed != published) {
        cell += "*";
        if (d <= 3) {
          ++mismatch_123;
        } else {
          ++errata_4;
        }
      }
      row.push_back(cell);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "rows SRW1-SRW3: %d cells differ from the published table "
      "(expect 0)\n",
      mismatch_123);
  std::printf(
      "row SRW4: %d cells (marked *) differ from print; these are the "
      "entries inconsistent with the paper's own Appendix B formula "
      "alpha = |S|(|S|-1) <= 20\n",
      errata_4);

  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty() && table.WriteCsv(csv)) {
    std::printf("csv written to %s\n", csv.c_str());
  }
  std::vector<grw::bench::JsonMetric> metrics;
  grw::bench::AppendTableMetrics(table, &metrics);
  metrics.push_back(
      {"mismatch_srw123", static_cast<double>(mismatch_123), "cells"});
  metrics.push_back({"errata_srw4", static_cast<double>(errata_4), "cells"});
  grw::bench::MaybeWriteJson(flags, "bench_table3_alpha5",
                             "alpha coefficients vs published Table 3",
                             metrics);
  return mismatch_123 == 0 ? 0 : 1;
}
