// Micro benchmarks: per-step cost of the walks on G(d) — the mechanism
// behind paper Table 6's runtime gap (O(1) for d <= 2, O(d^2 |E|/|V|)
// neighbor enumeration for d >= 3) — and of the full estimator variants.

#include <benchmark/benchmark.h>

#include "core/estimator.h"
#include "eval/datasets.h"
#include "util/rng.h"
#include "walk/edge_walk.h"
#include "walk/node_walk.h"
#include "walk/subgraph_walk.h"

namespace {

const grw::Graph& BenchGraph() {
  static const grw::Graph g = grw::MakeDatasetByName("brightkite-sim", 0.5);
  return g;
}

// Same graph with the adjacency acceleration index attached: walks/
// estimators produce bit-identical trajectories on it, only faster.
const grw::Graph& IndexedBenchGraph() {
  static const grw::Graph g = [] {
    grw::Graph indexed = BenchGraph();
    indexed.BuildAdjacencyIndex();
    return indexed;
  }();
  return g;
}

void BM_NodeWalkStep(benchmark::State& state) {
  const grw::Graph& g = BenchGraph();
  grw::NodeWalk walk(g, state.range(0) != 0);
  grw::Rng rng(1);
  walk.Reset(rng);
  for (auto _ : state) {
    walk.Step(rng);
    benchmark::DoNotOptimize(walk.Current());
  }
}
BENCHMARK(BM_NodeWalkStep)->Arg(0)->Arg(1);

void BM_EdgeWalkStep(benchmark::State& state) {
  const grw::Graph& g = BenchGraph();
  grw::EdgeWalk walk(g, state.range(0) != 0);
  grw::Rng rng(2);
  walk.Reset(rng);
  for (auto _ : state) {
    walk.Step(rng);
    benchmark::DoNotOptimize(walk.Nodes().data());
  }
}
BENCHMARK(BM_EdgeWalkStep)->Arg(0)->Arg(1);

// Args: {d, indexed}. The indexed variant is the end-to-end SRW3/SRW4
// steps/sec number with the AdjacencyIndex on (same RNG stream, same
// trajectory — only the per-step enumeration cost moves).
void BM_SubgraphWalkStep(benchmark::State& state) {
  const grw::Graph& g =
      state.range(1) != 0 ? IndexedBenchGraph() : BenchGraph();
  grw::SubgraphWalk walk(g, static_cast<int>(state.range(0)));
  grw::Rng rng(3);
  walk.Reset(rng);
  for (auto _ : state) {
    walk.Step(rng);
    benchmark::DoNotOptimize(walk.Nodes().data());
  }
  state.SetLabel(std::string("SRW") + std::to_string(state.range(0)) +
                 (state.range(1) != 0 ? " indexed" : " binary-search"));
}
BENCHMARK(BM_SubgraphWalkStep)
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Args({4, 1});

// Args: {k, d, css, indexed}.
void BM_EstimatorStep(benchmark::State& state) {
  const grw::Graph& g =
      state.range(3) != 0 ? IndexedBenchGraph() : BenchGraph();
  grw::EstimatorConfig config;
  config.k = static_cast<int>(state.range(0));
  config.d = static_cast<int>(state.range(1));
  config.css = state.range(2) != 0;
  grw::GraphletEstimator estimator(g, config);
  estimator.Reset(4);
  for (auto _ : state) {
    estimator.Run(1);
  }
  state.SetLabel(config.Name() + " k=" + std::to_string(config.k) +
                 (state.range(3) != 0 ? " indexed" : ""));
}
BENCHMARK(BM_EstimatorStep)
    ->Args({3, 1, 0, 0})
    ->Args({3, 1, 1, 0})
    ->Args({4, 2, 0, 0})
    ->Args({4, 2, 0, 1})
    ->Args({4, 2, 1, 0})
    ->Args({4, 2, 1, 1})
    ->Args({4, 3, 0, 0})
    ->Args({4, 3, 0, 1})
    ->Args({5, 2, 0, 0})
    ->Args({5, 2, 1, 0})
    ->Args({5, 4, 0, 0})
    ->Args({5, 4, 0, 1});

}  // namespace

BENCHMARK_MAIN();
