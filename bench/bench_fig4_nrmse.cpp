// Regenerates paper Figure 4: NRMSE of concentration estimates at a fixed
// walk-step budget for the rarest graphlet of each size — triangle (g32),
// 4-clique (g46) and 5-clique (g5_21) — across datasets and framework
// variants. This is the paper's headline accuracy comparison: smaller d
// wins, CSS helps substantially, NB is marginal, and PSRW (= SRW3/SRW4
// for 4/5-node) loses by up to an order of magnitude.
//
// Defaults are scaled down from the paper (100 sims instead of 1,000;
// 30 for the d >= 3 walks instead of 100); --paper restores the published
// protocol.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/estimator.h"
#include "core/paper_ids.h"
#include "eval/experiment.h"
#include "graphlet/catalog.h"

namespace {

struct Panel {
  int k;
  const char* target_name;  // table caption
  int paper_pos;            // 0-based paper position of the target type
  grw::DatasetTier tier;    // datasets with ground truth for this k
  std::vector<grw::EstimatorConfig> methods;
};

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const uint64_t steps = flags.GetUInt64("steps", 20000);  // paper: 20K
  const int sims_fast = grw::bench::SimCount(flags, 100, 1000);
  const int sims_slow = flags.GetInt32("sims-slow", flags.GetBool("paper") ? 100 : 30);

  const std::vector<Panel> panels = {
      {3, "triangle g32", 1, grw::DatasetTier::kLarge,
       {{3, 1, false, false},
        {3, 1, true, false},
        {3, 1, true, true},
        {3, 2, false, false},
        {3, 2, false, true}}},
      {4, "4-clique g46", 5, grw::DatasetTier::kMedium,
       {{4, 2, false, false}, {4, 2, true, false}, {4, 3, false, false}}},
      {5, "5-clique g5_21", 20, grw::DatasetTier::kSmall,
       {{5, 2, false, false},
        {5, 2, true, false},
        {5, 3, false, false},
        {5, 4, false, false}}},
  };

  std::vector<grw::bench::JsonMetric> metrics;
  for (const Panel& panel : panels) {
    const auto graphs = grw::bench::LoadBenchGraphs(flags, panel.tier);
    const int target =
        grw::PaperOrder(panel.k)[panel.paper_pos];

    grw::Table table("Figure 4: NRMSE of " + std::string(panel.target_name) +
                     " concentration (steps=" + std::to_string(steps) + ")");
    std::vector<std::string> header = {"Graph"};
    for (const auto& m : panel.methods) header.push_back(m.Name());
    table.SetHeader(header);

    for (const auto& bg : graphs) {
      const auto truth = grw::CachedExactConcentrations(bg.graph, panel.k,
                                                        bg.cache_key);
      std::vector<std::string> row = {bg.name};
      for (const auto& method : panel.methods) {
        const int sims = method.d >= 3 ? sims_slow : sims_fast;
        const auto chains = grw::RunConcentrationChains(
            bg.graph, method, steps, sims, /*base_seed=*/0x514f);
        row.push_back(grw::Table::Num(
            grw::NrmseOfType(chains, truth, target), 4));
      }
      table.AddRow(row);
    }
    table.Print();
    if (panel.k == 3) grw::bench::MaybeWriteCsv(flags, table);
    // += instead of an operator+ chain: GCC 12 -O2 emits a -Wrestrict
    // false positive on chained std::string concatenation (PR105651).
    std::string prefix = "k";
    prefix += std::to_string(panel.k);
    prefix += '_';
    grw::bench::AppendTableMetrics(table, &metrics, prefix);
  }
  grw::bench::MaybeWriteJson(flags, "bench_fig4_nrmse",
                             "steps=" + std::to_string(steps) +
                                 ", sims=" + std::to_string(sims_fast) + "/" +
                                 std::to_string(sims_slow),
                             metrics);
  return 0;
}
