// Regenerates paper Table 6: wall-clock time of performing 20K random walk
// steps when estimating 5-node graphlet concentration with SRW2, SRW2CSS,
// SRW3, SRW4, versus exact enumeration — the paper's evidence that walking
// on G(d) with smaller d is faster (SRW2 in milliseconds, SRW4 in tens of
// seconds, Exact in minutes-to-hours).
//
// "Exact" here is our ESU enumeration (the paper used [13]); it is timed
// fresh unless --skip-exact is given.

#include <cstdio>

#include "bench_common.h"
#include "core/estimator.h"
#include "exact/esu.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const uint64_t steps = flags.GetUInt64("steps", 20000);
  const bool skip_exact = flags.GetBool("skip-exact");
  const auto graphs =
      grw::bench::LoadBenchGraphs(flags, grw::DatasetTier::kSmall);

  const std::vector<grw::EstimatorConfig> methods = {
      {5, 2, false, false},
      {5, 2, true, false},
      {5, 3, false, false},
      {5, 4, false, false}};

  grw::Table table("Table 6: running time of " + std::to_string(steps) +
                   " random walk steps (5-node graphlets)");
  table.SetHeader(
      {"Graph", "SRW2", "SRW2CSS", "SRW3", "SRW4", "Exact (ESU)"});

  std::vector<grw::bench::JsonMetric> metrics;
  const std::vector<std::string> method_names = {"srw2", "srw2css", "srw3",
                                                 "srw4"};
  for (const auto& bg : graphs) {
    std::vector<std::string> row = {bg.name};
    size_t method_idx = 0;
    for (const auto& method : methods) {
      // Median-ish of 3 runs for the fast methods, 1 run for slow ones.
      const int reps = method.d <= 2 ? 3 : 1;
      double best = 1e100;
      for (int r = 0; r < reps; ++r) {
        grw::GraphletEstimator estimator(bg.graph, method);
        estimator.Reset(0xbe9c + r);
        grw::WallTimer timer;
        estimator.Run(steps);
        best = std::min(best, timer.Seconds());
      }
      row.push_back(grw::Table::Duration(best));
      metrics.push_back({grw::bench::MetricNameFragment(bg.name) + "_" +
                             method_names[method_idx++] + "_s",
                         best, "s"});
    }
    if (skip_exact) {
      row.push_back("(skipped)");
    } else {
      grw::WallTimer timer;
      const auto counts = grw::CountGraphletsEsu(bg.graph, 5);
      (void)counts;
      const double exact_seconds = timer.Seconds();
      row.push_back(grw::Table::Duration(exact_seconds));
      metrics.push_back({grw::bench::MetricNameFragment(bg.name) + "_exact_s",
                         exact_seconds, "s"});
    }
    table.AddRow(row);
  }
  table.Print();
  grw::bench::MaybeWriteCsv(flags, table);
  grw::bench::MaybeWriteJson(flags, "bench_table6_runtime",
                             "steps=" + std::to_string(steps), metrics);
  return 0;
}
