// HasEdge micro-bench + end-to-end G(d) walk speedup gate.
//
// Part 1 — ns/query across degree regimes, binary-search CSR lookup vs
// the AdjacencyIndex path (hub bitsets + neighbor signatures + hybrid
// galloping search), on a >= 1M-edge Holme-Kim graph:
//
//   hub-hub      both endpoints have dense bitset rows -> one bit test
//   hub-leaf     the degree-oriented probe resolves against the hub row
//   leaf-leaf    signature filter + short-list scan (no bitset involved)
//   miss-heavy   uniform random pairs, ~all non-edges: the signature's
//                home turf (the sample window and G(d) enumeration are
//                dominated by exactly this shape of query)
//   edge-present degree-weighted existing edges: worst case for the
//                signature (always passes), best for hub rows
//
// Part 2 — SRW3/SRW4 neighbor-enumeration throughput (steps/s) over one
// recorded walk trajectory, three implementations:
//
//   reference    PR 3 path: per-step vector allocations + adjacency-
//                probing BFS per candidate, binary-search HasEdge
//   scratch      this PR's allocation-free incremental enumerator,
//                binary-search HasEdge
//   scratch+idx  same, with the AdjacencyIndex attached
//
// Replaying one fixed trajectory keeps the three measurements on identical
// work; enumeration dominates an SRW step, so steps/s here is the
// end-to-end walk rate (bench_micro_walks has the full-walk variant).
//
// Part 3 — live walk throughput, scalar vs batched kernel
// (walk/batched_walk.h): real transitions (StateDegree + Step, draws and
// all) on the indexed graph, one scalar chain vs 8 lanes in lockstep on
// one thread. Total transitions per second — the number the estimator's
// hot loop actually sees.
//
// Flags:
//   --n N                  Holme-Kim nodes (default 250000 -> ~1.25M edges)
//   --param M              Holme-Kim edges per node (default 5)
//   --queries Q            queries per regime (default 2000000)
//   --srw3-steps N         trajectory length for d=3 (default 2000)
//   --srw4-steps N         trajectory length for d=4 (default 200)
//   --lanes W              batched kernel lanes (default 8)
//   --runs R               best-of-R timing (default 3)
//   --check-speedup X      exit 1 unless indexed speedup >= X on BOTH the
//                          miss-heavy and hub-hub regimes AND >= 1.0x on
//                          EVERY regime (the index must never lose) (CI)
//   --check-walk-speedup Y exit 1 unless scratch+idx/reference >= Y for
//                          BOTH SRW3 and SRW4 (CI gate)
//   --check-batched-speedup Z exit 1 unless batched/scalar live-walk
//                          throughput >= Z for BOTH SRW3 and SRW4 (CI)
//   --csv PATH             mirror of the Part 1 (HasEdge regimes) table
//   --json PATH            machine-readable mirror of ALL parts (the
//                          BENCH_HASEDGE.json trajectory format)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/adjacency.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/timer.h"
#include "walk/batched_walk.h"
#include "walk/subgraph_walk.h"

namespace {

using grw::Graph;
using grw::VertexId;

struct QuerySet {
  std::string name;
  std::vector<VertexId> u;
  std::vector<VertexId> v;
};

template <typename Fn>
double BestOfSeconds(int runs, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < runs; ++r) {
    grw::WallTimer t;
    fn();
    best = std::min(best, t.Seconds());
  }
  return best;
}

// Times one HasEdge pass over a query set; returns {ns/query, hit count}.
template <typename Probe>
std::pair<double, uint64_t> TimeQueries(const QuerySet& q, int runs,
                                        Probe&& probe) {
  uint64_t hits = 0;
  const double seconds = BestOfSeconds(runs, [&] {
    uint64_t h = 0;
    for (size_t i = 0; i < q.u.size(); ++i) h += probe(q.u[i], q.v[i]);
    hits = h;
  });
  return {seconds / static_cast<double>(q.u.size()) * 1e9, hits};
}

// Keeps a benched computation's result alive without benchmark-library
// dependencies (this bench is a standalone main).
volatile uint64_t g_sink = 0;

std::vector<VertexId> SampleFrom(const std::vector<VertexId>& pool,
                                 size_t count, grw::Rng& rng) {
  std::vector<VertexId> out(count);
  for (size_t i = 0; i < count; ++i) out[i] = pool[rng.UniformInt(pool.size())];
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const int64_t n_raw = flags.GetInt("n", 250000);
  if (n_raw < 100) {
    // The walk section needs a graph SubgraphWalk d=4 can move on, and
    // the samplers need edges to draw; anything this small is not a
    // meaningful measurement anyway.
    std::fprintf(stderr, "bench_micro_hasedge: --n must be >= 100\n");
    return 2;
  }
  const auto n = static_cast<VertexId>(n_raw);
  const auto param = flags.GetUInt32("param", 5);
  const size_t queries =
      flags.GetSize("queries", 2000000);
  const int runs = flags.GetInt32("runs", 3);
  const int lanes = flags.GetInt32("lanes", 8);
  const auto linear_cutoff =
      flags.GetUInt32("linear-cutoff", 0);
  const double check_speedup = flags.GetDouble("check-speedup", 0.0);
  const double check_walk = flags.GetDouble("check-walk-speedup", 0.0);
  const double check_batched = flags.GetDouble("check-batched-speedup", 0.0);

  grw::Rng gen_rng(7);
  grw::WallTimer gen_timer;
  const Graph plain = grw::HolmeKim(n, param, 0.3, gen_rng);
  Graph indexed = plain;
  grw::WallTimer index_timer;
  grw::AdjacencyIndexOptions index_options;
  if (linear_cutoff > 0) index_options.linear_cutoff = linear_cutoff;
  indexed.BuildAdjacencyIndex(index_options);
  const double index_s = index_timer.Seconds();
  const grw::AdjacencyIndex& index = *indexed.adjacency_index();
  std::fprintf(stderr,
               "[hasedge] %s generated in %s; index: %u hubs (deg >= %u), "
               "%.1f MiB bitsets + %.1f MiB signatures, built in %s\n",
               plain.Summary().c_str(),
               grw::Table::Duration(gen_timer.Seconds()).c_str(),
               index.num_hubs(), index.hub_threshold(),
               static_cast<double>(index.bitset_bytes()) / (1 << 20),
               static_cast<double>(index.signature_bytes()) / (1 << 20),
               grw::Table::Duration(index_s).c_str());

  // ---- Part 1: query regimes -------------------------------------------
  std::vector<VertexId> hubs;
  std::vector<VertexId> leaves;
  for (VertexId v = 0; v < plain.NumNodes(); ++v) {
    (index.IsHub(v) ? hubs : leaves).push_back(v);
  }
  if (hubs.empty()) hubs = leaves;    // degenerate flat graph: keep running
  if (leaves.empty()) leaves = hubs;  // (and the all-hubs mirror image)

  grw::Rng qrng(99);
  std::vector<QuerySet> sets;
  sets.push_back({"hub-hub", SampleFrom(hubs, queries, qrng),
                  SampleFrom(hubs, queries, qrng)});
  sets.push_back({"hub-leaf", SampleFrom(hubs, queries, qrng),
                  SampleFrom(leaves, queries, qrng)});
  sets.push_back({"leaf-leaf", SampleFrom(leaves, queries, qrng),
                  SampleFrom(leaves, queries, qrng)});
  {
    QuerySet miss;
    miss.name = "miss-heavy";
    miss.u.resize(queries);
    miss.v.resize(queries);
    for (size_t i = 0; i < queries; ++i) {
      miss.u[i] = static_cast<VertexId>(qrng.UniformInt(plain.NumNodes()));
      miss.v[i] = static_cast<VertexId>(qrng.UniformInt(plain.NumNodes()));
    }
    sets.push_back(std::move(miss));
  }
  {
    // Existing edges, degree-weighted: a uniform position in the neighbor
    // array belongs to v with probability deg(v)/2m.
    QuerySet present;
    present.name = "edge-present";
    present.u.resize(queries);
    present.v.resize(queries);
    const auto offsets = plain.RawOffsets();
    const auto neighbors = plain.RawNeighbors();
    for (size_t i = 0; i < queries; ++i) {
      const uint64_t pos = qrng.UniformInt(neighbors.size());
      const auto it =
          std::upper_bound(offsets.begin(), offsets.end(), pos) - 1;
      present.u[i] = static_cast<VertexId>(it - offsets.begin());
      present.v[i] = neighbors[pos];
    }
    sets.push_back(std::move(present));
  }

  grw::Table table("HasEdge micro bench: " + plain.Summary() + ", " +
                   std::to_string(queries) + " queries/regime, best of " +
                   std::to_string(runs));
  table.SetHeader({"regime", "binary ns/q", "indexed ns/q", "speedup",
                   "hit rate"});
  std::vector<grw::bench::JsonMetric> metrics;
  double miss_speedup = 0.0;
  double hub_speedup = 0.0;
  double min_speedup = 1e300;
  std::string min_regime;
  for (const QuerySet& q : sets) {
    const auto [binary_ns, binary_hits] =
        TimeQueries(q, runs, [&](VertexId a, VertexId b) {
          return plain.HasEdge(a, b) ? 1u : 0u;
        });
    const auto [indexed_ns, indexed_hits] =
        TimeQueries(q, runs, [&](VertexId a, VertexId b) {
          return indexed.HasEdge(a, b) ? 1u : 0u;
        });
    if (binary_hits != indexed_hits) {
      std::fprintf(stderr, "FAIL: %s: hit counts disagree (%llu vs %llu)\n",
                   q.name.c_str(),
                   static_cast<unsigned long long>(binary_hits),
                   static_cast<unsigned long long>(indexed_hits));
      return 1;
    }
    const double speedup = binary_ns / indexed_ns;
    if (q.name == "miss-heavy") miss_speedup = speedup;
    if (q.name == "hub-hub") hub_speedup = speedup;
    if (speedup < min_speedup) {
      min_speedup = speedup;
      min_regime = q.name;
    }
    table.AddRow({q.name, grw::Table::Num(binary_ns, 1),
                  grw::Table::Num(indexed_ns, 1),
                  grw::Table::Num(speedup, 2) + "x",
                  grw::Table::Num(static_cast<double>(binary_hits) /
                                      static_cast<double>(q.u.size()),
                                  4)});
    const std::string prefix =
        q.name == "edge-present" ? "present" : q.name;
    std::string id = prefix;
    for (char& c : id) {
      if (c == '-') c = '_';
    }
    metrics.push_back({id + "_binary_ns", binary_ns, "ns/query"});
    metrics.push_back({id + "_indexed_ns", indexed_ns, "ns/query"});
    metrics.push_back({id + "_speedup", speedup, "x"});
  }
  table.Print();

  // ---- Part 2: SRW3/SRW4 enumeration throughput ------------------------
  grw::Table walk_table("G(d) walk steps/s (trajectory replay, best of " +
                        std::to_string(runs) + ")");
  walk_table.SetHeader({"walk", "steps", "reference", "scratch",
                        "scratch+index", "speedup vs ref"});
  double srw3_speedup = 0.0;
  double srw4_speedup = 0.0;
  for (const int d : {3, 4}) {
    const auto steps = flags.GetSize(
        "srw" + std::to_string(d) + "-steps", d == 3 ? 2000 : 200);
    // Record one trajectory with the real walk (fixed seed), then replay
    // the enumeration — identical work for all three implementations.
    std::vector<VertexId> trajectory;
    trajectory.reserve(steps * d);
    {
      grw::SubgraphWalk walk(plain, d);
      grw::Rng walk_rng(17 * d);
      walk.Reset(walk_rng);
      for (size_t s = 0; s < steps; ++s) {
        const auto nodes = walk.Nodes();
        trajectory.insert(trajectory.end(), nodes.begin(), nodes.end());
        walk.Step(walk_rng);
      }
    }
    auto replay = [&](auto&& enumerate) {
      return BestOfSeconds(runs, [&] {
        std::vector<VertexId> out;
        for (size_t s = 0; s < steps; ++s) {
          out.clear();
          enumerate(
              std::span<const VertexId>(trajectory.data() + s * d, d), &out);
        }
      });
    };
    const double ref_s = replay([&](auto state, auto* out) {
      grw::EnumerateGdNeighborsReference(plain, state, out);
    });
    grw::GdScratch scratch;
    const double scratch_s = replay([&](auto state, auto* out) {
      grw::EnumerateGdNeighbors(plain, state, out, scratch);
    });
    const double indexed_s = replay([&](auto state, auto* out) {
      grw::EnumerateGdNeighbors(indexed, state, out, scratch);
    });
    const double speedup = ref_s / indexed_s;
    if (d == 3) srw3_speedup = speedup;
    if (d == 4) srw4_speedup = speedup;
    const auto rate = [&](double s) {
      return grw::Table::Num(static_cast<double>(steps) / s, 0);
    };
    walk_table.AddRow({"SRW" + std::to_string(d), std::to_string(steps),
                       rate(ref_s), rate(scratch_s), rate(indexed_s),
                       grw::Table::Num(speedup, 2) + "x"});
    const std::string id = "srw" + std::to_string(d);
    metrics.push_back(
        {id + "_reference_steps_per_s", steps / ref_s, "steps/s"});
    metrics.push_back(
        {id + "_scratch_steps_per_s", steps / scratch_s, "steps/s"});
    metrics.push_back(
        {id + "_indexed_steps_per_s", steps / indexed_s, "steps/s"});
    metrics.push_back({id + "_speedup", speedup, "x"});
  }
  walk_table.Print();

  // ---- Part 3: live walk throughput, scalar vs batched kernel ----------
  grw::Table batched_table(
      "Live G(d) walk transitions/s, scalar chain vs " +
      std::to_string(lanes) + "-lane batched kernel (best of " +
      std::to_string(runs) + ")");
  batched_table.SetHeader(
      {"walk", "transitions", "scalar", "batched", "speedup"});
  double srw3_batched_speedup = 0.0;
  double srw4_batched_speedup = 0.0;
  for (const int d : {3, 4}) {
    const auto steps = flags.GetSize(
        "srw" + std::to_string(d) + "-steps", d == 3 ? 2000 : 200);
    // Both sides do the estimator's per-transition work — StateDegree
    // then Step — on the indexed graph, re-seeded identically per run.
    const double scalar_s = BestOfSeconds(runs, [&] {
      grw::SubgraphWalk walk(indexed, d);
      grw::Rng rng(23 * d);
      walk.Reset(rng);
      uint64_t sink = 0;
      for (size_t s = 0; s < steps; ++s) {
        sink += walk.StateDegree();
        walk.Step(rng);
      }
      g_sink = g_sink + sink;
    });
    const double batched_s = BestOfSeconds(runs, [&] {
      grw::BatchedWalk walk(indexed, d, lanes);
      std::vector<grw::Rng> rng(lanes);
      for (int j = 0; j < lanes; ++j) {
        rng[j].Seed(grw::DeriveSeed(23 * d, j));
        walk.ResetLane(j, rng[j]);
      }
      uint64_t sink = 0;
      for (size_t s = 0; s < steps; ++s) {
        walk.PrepareLanes();
        for (int j = 0; j < lanes; ++j) {
          sink += walk.LaneStateDegree(j);
          walk.StepLane(j, rng[j]);
        }
      }
      g_sink = g_sink + sink;
    });
    // Aggregate throughput: the batched run advances lanes * steps
    // transitions in batched_s seconds on the same single thread.
    const double scalar_rate = static_cast<double>(steps) / scalar_s;
    const double batched_rate =
        static_cast<double>(steps) * lanes / batched_s;
    const double speedup = batched_rate / scalar_rate;
    if (d == 3) srw3_batched_speedup = speedup;
    if (d == 4) srw4_batched_speedup = speedup;
    batched_table.AddRow(
        {"SRW" + std::to_string(d),
         std::to_string(steps) + "x" + std::to_string(lanes),
         grw::Table::Num(scalar_rate, 0), grw::Table::Num(batched_rate, 0),
         grw::Table::Num(speedup, 2) + "x"});
    const std::string id = "srw" + std::to_string(d);
    metrics.push_back(
        {id + "_scalar_walk_steps_per_s", scalar_rate, "steps/s"});
    metrics.push_back(
        {id + "_batched_steps_per_s", batched_rate, "steps/s"});
    metrics.push_back({id + "_batched_speedup", speedup, "x"});
  }
  batched_table.Print();

  grw::bench::MaybeWriteCsv(flags, table);
  grw::bench::MaybeWriteJson(flags, "micro_hasedge", plain.Summary(),
                             metrics);

  bool ok = true;
  if (check_speedup > 0.0) {
    if (miss_speedup < check_speedup || hub_speedup < check_speedup) {
      std::fprintf(stderr,
                   "FAIL: indexed HasEdge speedup below %.1fx "
                   "(miss-heavy %.2fx, hub-hub %.2fx)\n",
                   check_speedup, miss_speedup, hub_speedup);
      ok = false;
    } else if (min_speedup < 1.0) {
      // The index must pay for itself on every regime: a single regime
      // below parity means some workload would be better off without it.
      std::fprintf(stderr,
                   "FAIL: indexed HasEdge loses on regime %s "
                   "(%.2fx < 1.0x)\n",
                   min_regime.c_str(), min_speedup);
      ok = false;
    } else {
      std::printf("OK: indexed HasEdge %.1fx (miss-heavy) / %.1fx "
                  "(hub-hub), required >= %.1fx; worst regime %s %.2fx "
                  ">= 1.0x\n",
                  miss_speedup, hub_speedup, check_speedup,
                  min_regime.c_str(), min_speedup);
    }
  }
  if (check_walk > 0.0) {
    if (srw3_speedup < check_walk || srw4_speedup < check_walk) {
      std::fprintf(stderr,
                   "FAIL: SRW steps/s speedup below %.2fx "
                   "(SRW3 %.2fx, SRW4 %.2fx)\n",
                   check_walk, srw3_speedup, srw4_speedup);
      ok = false;
    } else {
      std::printf("OK: SRW3 %.1fx / SRW4 %.1fx steps/s vs reference, "
                  "required >= %.2fx\n",
                  srw3_speedup, srw4_speedup, check_walk);
    }
  }
  if (check_batched > 0.0) {
    if (srw3_batched_speedup < check_batched ||
        srw4_batched_speedup < check_batched) {
      std::fprintf(stderr,
                   "FAIL: batched walk throughput below %.2fx scalar "
                   "(SRW3 %.2fx, SRW4 %.2fx)\n",
                   check_batched, srw3_batched_speedup,
                   srw4_batched_speedup);
      ok = false;
    } else {
      std::printf("OK: batched kernel SRW3 %.2fx / SRW4 %.2fx scalar "
                  "throughput, required >= %.2fx\n",
                  srw3_batched_speedup, srw4_batched_speedup,
                  check_batched);
    }
  }
  return ok ? 0 : 1;
}
