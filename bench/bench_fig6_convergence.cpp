// Regenerates paper Figure 6: NRMSE vs random-walk steps (2K..20K) for
// the rarest graphlet of each size, showing convergence of the framework
// variants. Panels follow the paper: (a) triangle on the two largest
// datasets, (b) 4-node clique on two medium datasets, (c) 5-node clique
// on two small datasets.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/estimator.h"
#include "core/paper_ids.h"
#include "eval/experiment.h"

namespace {

struct Panel {
  int k;
  const char* caption;
  int paper_pos;
  std::vector<std::string> datasets;
  std::vector<grw::EstimatorConfig> methods;
};

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const int sims = grw::bench::SimCount(flags, 60, 1000);
  const double scale = flags.GetDouble("scale", 1.0);
  std::vector<uint64_t> grid;
  for (uint64_t s = 2000; s <= 20000; s += 2000) grid.push_back(s);

  const std::vector<Panel> panels = {
      {3, "triangle g32", 1, {"twitter-sim", "sinaweibo-sim"},
       {{3, 1, false, false},
        {3, 1, true, false},
        {3, 1, true, true},
        {3, 2, false, false},
        {3, 2, false, true}}},
      {4, "4-clique g46", 5, {"pokec-sim", "flickr-sim"},
       {{4, 2, false, false}, {4, 2, true, false}, {4, 3, false, false}}},
      {5, "5-clique g5_21", 20, {"epinion-sim", "slashdot-sim"},
       {{5, 2, false, false},
        {5, 2, true, false},
        {5, 3, false, false},
        {5, 4, false, false}}},
  };

  std::vector<grw::bench::JsonMetric> metrics;
  for (const Panel& panel : panels) {
    const int target = grw::PaperOrder(panel.k)[panel.paper_pos];
    for (const std::string& dataset : panel.datasets) {
      const grw::Graph g = grw::MakeDatasetByName(dataset, scale);
      std::fprintf(stderr, "[bench] %s: %s\n", dataset.c_str(),
                   g.Summary().c_str());
      const auto truth = grw::CachedExactConcentrations(
          g, panel.k, grw::DatasetCacheKey(dataset, scale));

      grw::Table table("Figure 6: NRMSE of " + std::string(panel.caption) +
                       " vs steps on " + dataset);
      std::vector<std::string> header = {"Steps"};
      for (const auto& m : panel.methods) header.push_back(m.Name());
      table.SetHeader(header);

      std::vector<std::vector<double>> curves;
      for (const auto& method : panel.methods) {
        const int method_sims =
            method.d >= 3 ? std::max(10, sims / 2) : sims;
        curves.push_back(grw::ConvergenceNrmse(
            g, method, grid, method_sims, 0xf166, truth, target));
      }
      for (size_t p = 0; p < grid.size(); ++p) {
        std::vector<std::string> row = {grw::Table::Int(
            static_cast<long long>(grid[p]))};
        for (const auto& curve : curves) {
          row.push_back(grw::Table::Num(curve[p], 4));
        }
        table.AddRow(row);
      }
      table.Print();
      // += instead of an operator+ chain: GCC 12 -O2 emits a -Wrestrict
      // false positive on chained std::string concatenation (PR105651).
      std::string prefix = "k";
      prefix += std::to_string(panel.k);
      prefix += '_';
      prefix += grw::bench::MetricNameFragment(dataset);
      prefix += "_steps";
      grw::bench::AppendTableMetrics(table, &metrics, prefix);
    }
  }
  grw::bench::MaybeWriteJson(flags, "bench_fig6_convergence",
                             "sims=" + std::to_string(sims) +
                                 ", scale=" + std::to_string(scale),
                             metrics);
  return 0;
}
