// Regenerates paper Table 5: the dataset inventory with exact clique
// concentrations c32 (triangle), c46 (4-clique) and c521 (5-clique; small
// tier only, mirroring the paper's ground-truth footnote).

#include <cstdio>

#include "bench_common.h"
#include "core/paper_ids.h"
#include "graphlet/catalog.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const auto graphs =
      grw::bench::LoadBenchGraphs(flags, grw::DatasetTier::kLarge);

  const auto& c3 = grw::GraphletCatalog::ForSize(3);
  const auto& c4 = grw::GraphletCatalog::ForSize(4);
  const int triangle = c3.IdByName("triangle");
  const int clique4 = c4.IdByName("4-clique");
  const int clique5 = grw::PaperOrder(5)[20];  // g5_21

  grw::Table table("Table 5: datasets (synthetic analogs, see DESIGN.md)");
  table.SetHeader({"Graph", "|V|", "|E|", "c32 (1e-2)", "c46 (1e-3)",
                   "c521 (1e-5)", "GT time"});

  for (const auto& bg : graphs) {
    grw::WallTimer timer;
    const auto conc3 =
        grw::CachedExactConcentrations(bg.graph, 3, bg.cache_key);
    const auto conc4 =
        grw::CachedExactConcentrations(bg.graph, 4, bg.cache_key);
    std::string c521 = "-";
    const auto spec = grw::FindDataset(bg.name);
    const bool small_tier =
        spec.has_value() && spec->tier == grw::DatasetTier::kSmall;
    if (small_tier || flags.GetBool("all5")) {
      const auto conc5 =
          grw::CachedExactConcentrations(bg.graph, 5, bg.cache_key);
      c521 = grw::Table::Num(conc5[clique5] * 1e5, 3);
    }
    table.AddRow({bg.name, grw::Table::Int(bg.graph.NumNodes()),
                  grw::Table::Int(static_cast<long long>(
                      bg.graph.NumEdges())),
                  grw::Table::Num(conc3[triangle] * 1e2, 3),
                  grw::Table::Num(conc4[clique4] * 1e3, 5), c521,
                  grw::Table::Duration(timer.Seconds())});
  }
  table.Print();
  grw::bench::MaybeWriteCsv(flags, table);
  std::vector<grw::bench::JsonMetric> metrics;
  grw::bench::AppendTableMetrics(table, &metrics);
  grw::bench::MaybeWriteJson(flags, "bench_table5_datasets",
                             "dataset inventory with exact concentrations",
                             metrics);
  return 0;
}
