// Micro benchmarks: CSS weight evaluation — the compiled interior-
// coefficient tables vs the direct Algorithm-3 enumeration they replace.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/css.h"
#include "eval/datasets.h"
#include "graphlet/classifier.h"
#include "util/rng.h"

namespace {

struct Sample {
  std::vector<grw::VertexId> nodes;
  uint32_t mask;
};

const grw::Graph& BenchGraph() {
  static const grw::Graph g = grw::MakeDatasetByName("brightkite-sim", 0.5);
  return g;
}

// Random connected k-sets with their masks.
std::vector<Sample> MakeSamples(const grw::Graph& g, int k, int count) {
  grw::Rng rng(11);
  std::vector<Sample> samples;
  while (static_cast<int>(samples.size()) < count) {
    Sample s;
    s.nodes.push_back(
        static_cast<grw::VertexId>(rng.UniformInt(g.NumNodes())));
    while (static_cast<int>(s.nodes.size()) < k) {
      const grw::VertexId anchor = s.nodes[rng.UniformInt(s.nodes.size())];
      const grw::VertexId w = g.Neighbor(
          anchor, static_cast<uint32_t>(rng.UniformInt(g.Degree(anchor))));
      if (std::find(s.nodes.begin(), s.nodes.end(), w) == s.nodes.end()) {
        s.nodes.push_back(w);
      }
    }
    s.mask = 0;
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) {
        if (g.HasEdge(s.nodes[i], s.nodes[j])) {
          s.mask = grw::MaskWithEdge(s.mask, k, i, j);
        }
      }
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

void BM_CssTableEval(benchmark::State& state) {
  const grw::Graph& g = BenchGraph();
  const int k = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const grw::CssTable& table = grw::CssTable::For(k, d);
  const grw::GraphletClassifier& classifier =
      grw::GraphletClassifier::ForSize(k);
  const auto samples = MakeSamples(g, k, 256);
  size_t i = 0;
  for (auto _ : state) {
    const Sample& s = samples[i++ & 255];
    benchmark::DoNotOptimize(
        table.Eval(classifier.Info(s.mask), s.nodes, g, false));
  }
}
BENCHMARK(BM_CssTableEval)->Args({3, 1})->Args({4, 2})->Args({5, 2});

void BM_CssDirectEval(benchmark::State& state) {
  const grw::Graph& g = BenchGraph();
  const int k = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const grw::GraphletClassifier& classifier =
      grw::GraphletClassifier::ForSize(k);
  const auto samples = MakeSamples(g, k, 256);
  const auto probe = [&g](std::span<const grw::VertexId> nodes) -> uint64_t {
    if (nodes.size() == 1) return g.Degree(nodes[0]);
    return static_cast<uint64_t>(g.Degree(nodes[0])) + g.Degree(nodes[1]) -
           2;
  };
  size_t i = 0;
  for (auto _ : state) {
    const Sample& s = samples[i++ & 255];
    benchmark::DoNotOptimize(grw::CssWeightDirect(
        k, d, classifier.Info(s.mask), s.nodes, probe, false));
  }
}
BENCHMARK(BM_CssDirectEval)->Args({3, 1})->Args({4, 2})->Args({5, 2});

}  // namespace

BENCHMARK_MAIN();
