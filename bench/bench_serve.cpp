// Serve-layer load generator: QPS and tail latency vs client count.
//
// Starts an in-process ServeServer on an ephemeral port with one
// in-memory Holme-Kim fixture graph, then sweeps a list of client
// counts: each client holds one connection and streams --requests
// ESTIMATE lines through it back-to-back, so C clients means C requests
// in flight against the shared worker pool. Per-request wall time is
// recorded client-side (the honest number: queue wait + engine run +
// two socket hops over loopback).
//
// With --check-identical every response is additionally required to be
// byte-for-byte the estimate a direct in-process EstimationEngine run
// produces for the same fields — the serve path's bit-identity contract
// under real concurrency, as a CI gate (exit 1 on any mismatch).
//
// Flags:
//   --clients LIST   comma-separated client counts (default "1,2,4,8")
//   --requests N     requests per client per point (default 16)
//   --n / --param    fixture Holme-Kim size (default 5000 x 4)
//   --steps N        walk steps per request (default 20000)
//   --k K            graphlet size per request (default 4)
//   --chains C       chains per request (default 2)
//   --workers W      scheduler workers (default 4)
//   --check-identical  fail unless every response matches a direct run
//   --csv / --json   table mirror / BENCH_SERVE.json metrics
//
// Metrics (per client count C): serve_qps_c{C}, serve_p50_ms_c{C},
// serve_p99_ms_c{C} — the perf-trajectory answer to "what does another
// concurrent tenant cost?" — plus serve_error_rate_c{C} (fraction of
// requests whose final answer was an error or a transport failure) and
// serve_retries_c{C} (RETRY_AFTER load sheds absorbed by resending on
// the same connection). In a clean run both are 0; chaos builds with
// GRW_FAULT_SPEC set make them visible in the perf trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/paper_ids.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

std::vector<int> ParseClientList(const std::string& list) {
  std::vector<int> clients;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const std::string tok =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!tok.empty()) {
      const auto parsed = grw::ParseInt64(tok);
      if (!parsed || *parsed < 1) {
        std::fprintf(stderr, "bench_serve: bad --clients entry '%s'\n",
                     tok.c_str());
        std::exit(2);
      }
      clients.push_back(static_cast<int>(*parsed));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return clients;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

// Load-shed probe: a RETRY_AFTER response means the server answered but
// declined the work — the stream is healthy, so the bench resends on the
// same connection after the suggested wait. Returns that wait in
// milliseconds, or a negative value for any other response.
double ShedHintMs(const std::string& response) {
  const auto json = grw::serve::ParseJson(response);
  if (!json) return -1.0;
  const grw::serve::JsonValue* code = json->Find("code");
  if (code == nullptr || code->str != grw::serve::kErrorCodeRetryAfter) {
    return -1.0;
  }
  const grw::serve::JsonValue* hint = json->Find("retry_after_ms");
  return (hint != nullptr && hint->number >= 0.0) ? hint->number : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const std::vector<int> client_counts =
      ParseClientList(flags.GetString("clients", "1,2,4,8"));
  const int requests = flags.GetInt32("requests", 16);
  const int64_t steps = flags.GetInt("steps", 20000);
  const int k = flags.GetInt32("k", 4);
  const int chains = flags.GetInt32("chains", 2);
  const bool check_identical = flags.GetBool("check-identical");

  // Fixture graph, registered in memory — the bench measures the serve
  // layer, not snapshot loading (bench_loader covers that).
  grw::Rng rng(7);
  grw::Graph fixture =
      grw::HolmeKim(flags.GetUInt32("n", 5000),
                    flags.GetUInt32("param", 4), 0.5,
                    rng);
  fixture.BuildAdjacencyIndex();
  const std::string context = "holme-kim fixture: " + fixture.Summary() +
                              ", steps=" + std::to_string(steps) +
                              ", chains=" + std::to_string(chains);
  std::fprintf(stderr, "[bench] %s\n", context.c_str());

  grw::serve::SnapshotRegistry registry;
  registry.RegisterGraph("bench", fixture);

  grw::serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.scheduler.workers =
      flags.GetInt32("workers", 4);
  grw::serve::ServeServer server(&registry, server_options);
  server.Start();

  const std::string request_line =
      "ESTIMATE graph=bench k=" + std::to_string(k) +
      " steps=" + std::to_string(steps) +
      " chains=" + std::to_string(chains);

  // Reference answer for --check-identical: the direct engine run the
  // serve path must reproduce byte for byte (after %.17g formatting,
  // which is exactly what the wire carries).
  std::vector<std::string> expected;
  if (check_identical) {
    grw::serve::RequestLimits limits;
    limits.max_steps = static_cast<uint64_t>(steps);
    const auto parsed = grw::serve::ParseRequestLine(request_line, limits);
    if (!parsed.request) {
      std::fprintf(stderr, "bench_serve: bad request line: %s\n",
                   parsed.error.c_str());
      return 2;
    }
    const grw::serve::EstimateRequest& req = parsed.request->estimate;
    grw::EstimationEngine engine(fixture, req.config,
                                 grw::serve::ToEngineOptions(req));
    const grw::EngineResult direct = engine.Run();
    const auto& order = grw::PaperOrder(k);
    for (const int id : order) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g",
                    direct.merged.concentrations[id]);
      expected.emplace_back(buf);
    }
  }

  grw::Table table("serve throughput and tail latency (" +
                   std::to_string(requests) + " requests/client)");
  table.SetHeader({"clients", "QPS", "p50 ms", "p99 ms", "errors",
                   "retries"});
  std::vector<grw::bench::JsonMetric> metrics;
  bool identical = true;

  for (const int clients : client_counts) {
    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(clients));
    // uint8_t, not bool: vector<bool> packs bits, so concurrent writes
    // from different client threads would race on the shared bytes.
    // Errors/retries are per-client slots for the same reason.
    std::vector<uint8_t> client_ok(static_cast<size_t>(clients), 1);
    std::vector<uint64_t> client_errors(static_cast<size_t>(clients), 0);
    std::vector<uint64_t> client_retries(static_cast<size_t>(clients), 0);
    std::vector<std::thread> threads;
    grw::WallTimer sweep;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        const auto slot = static_cast<size_t>(c);
        try {
          grw::serve::QueryClient client("127.0.0.1", server.port());
          for (int r = 0; r < requests; ++r) {
            grw::WallTimer timer;
            std::string response = client.RoundTrip(request_line);
            // Absorb load sheds by resending on the same connection —
            // the retry wait counts toward this request's latency, which
            // is what a tenant actually experiences under overload.
            for (int shed = 0; shed < 8; ++shed) {
              const double hint_ms = ShedHintMs(response);
              if (hint_ms < 0.0) break;
              ++client_retries[slot];
              std::this_thread::sleep_for(std::chrono::microseconds(
                  static_cast<int64_t>(hint_ms * 1000.0)));
              response = client.RoundTrip(request_line);
            }
            latencies[slot].push_back(timer.Seconds() * 1e3);
            const auto json = grw::serve::ParseJson(response);
            const grw::serve::JsonValue* ok =
                json ? json->Find("ok") : nullptr;
            if (ok == nullptr || !ok->IsTrue()) {
              ++client_errors[slot];
              if (check_identical) client_ok[slot] = 0;
              continue;
            }
            if (!check_identical) continue;
            const grw::serve::JsonValue* conc =
                json->Find("concentrations");
            if (conc == nullptr || conc->items.size() != expected.size()) {
              client_ok[slot] = 0;
              continue;
            }
            for (size_t i = 0; i < expected.size(); ++i) {
              if (conc->items[i].raw != expected[i]) {
                client_ok[slot] = 0;
              }
            }
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "[bench] client %d failed: %s\n", c,
                       e.what());
          ++client_errors[slot];
          client_ok[slot] = 0;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds = sweep.Seconds();

    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    uint64_t errors = 0;
    uint64_t retries = 0;
    for (int c = 0; c < clients; ++c) {
      if (client_ok[static_cast<size_t>(c)] == 0) identical = false;
      errors += client_errors[static_cast<size_t>(c)];
      retries += client_retries[static_cast<size_t>(c)];
    }
    const uint64_t total =
        static_cast<uint64_t>(clients) * static_cast<uint64_t>(requests);
    const double error_rate =
        total > 0 ? static_cast<double>(errors) / static_cast<double>(total)
                  : 0.0;
    const double qps =
        seconds > 0.0 ? static_cast<double>(all.size()) / seconds : 0.0;
    const double p50 = Percentile(all, 0.50);
    const double p99 = Percentile(all, 0.99);
    table.AddRow({grw::Table::Int(clients), grw::Table::Num(qps, 1),
                  grw::Table::Num(p50, 2), grw::Table::Num(p99, 2),
                  grw::Table::Int(static_cast<int64_t>(errors)),
                  grw::Table::Int(static_cast<int64_t>(retries))});
    const std::string suffix = "_c" + std::to_string(clients);
    metrics.push_back({"serve_qps" + suffix, qps, "req/s"});
    metrics.push_back({"serve_p50_ms" + suffix, p50, "ms"});
    metrics.push_back({"serve_p99_ms" + suffix, p99, "ms"});
    metrics.push_back({"serve_error_rate" + suffix, error_rate, "fraction"});
    metrics.push_back(
        {"serve_retries" + suffix, static_cast<double>(retries), "count"});
  }
  table.Print();

  server.Stop();
  grw::bench::MaybeWriteCsv(flags, table);
  grw::bench::MaybeWriteJson(flags, "bench_serve", context, metrics);

  if (check_identical) {
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: served responses diverged from the direct "
                   "engine run\n");
      return 1;
    }
    std::printf("check-identical: every served response matched the "
                "direct engine run byte for byte\n");
  }
  return 0;
}
