// Micro benchmarks: graphlet-type identification — the incremental
// window maintenance of paper Section 5 (k-1 binary searches per step) vs
// naive C(k,2) recomputation, plus raw classifier lookup cost.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/sample_window.h"
#include "eval/datasets.h"
#include "graphlet/classifier.h"
#include "util/rng.h"
#include "walk/edge_walk.h"

namespace {

const grw::Graph& BenchGraph() {
  static const grw::Graph g = grw::MakeDatasetByName("brightkite-sim", 0.5);
  return g;
}

// Window maintenance along a real edge walk; arg selects incremental (0)
// vs naive (1) mask path.
void BM_WindowMaintenance(benchmark::State& state) {
  const grw::Graph& g = BenchGraph();
  const bool naive = state.range(0) != 0;
  grw::EdgeWalk walk(g);
  grw::Rng rng(5);
  walk.Reset(rng);
  grw::SampleWindow window(g, /*k=*/5, /*l=*/4);
  for (auto _ : state) {
    walk.Step(rng);
    window.Push(walk.Nodes(), 0);
    if (window.Valid()) {
      benchmark::DoNotOptimize(naive ? window.MaskNaive() : window.Mask());
    }
  }
  state.SetLabel(naive ? "naive C(k,2) queries" : "incremental (Sec. 5)");
}
BENCHMARK(BM_WindowMaintenance)->Arg(0)->Arg(1);

void BM_ClassifierLookup(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const grw::GraphletClassifier& classifier =
      grw::GraphletClassifier::ForSize(k);
  grw::Rng rng(6);
  const uint32_t mask_space = 1u << grw::NumPairBits(k);
  std::vector<uint32_t> masks(1024);
  for (auto& m : masks) m = static_cast<uint32_t>(rng.UniformInt(mask_space));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Type(masks[i++ & 1023]));
  }
}
BENCHMARK(BM_ClassifierLookup)->Arg(3)->Arg(4)->Arg(5);

void BM_CanonicalizationFromScratch(benchmark::State& state) {
  // What classification would cost without the precomputed table:
  // min over k! permutations.
  const int k = static_cast<int>(state.range(0));
  grw::Rng rng(7);
  const uint32_t mask_space = 1u << grw::NumPairBits(k);
  std::vector<uint32_t> masks(256);
  for (auto& m : masks) m = static_cast<uint32_t>(rng.UniformInt(mask_space));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grw::CanonicalMask(masks[i++ & 255], k));
  }
}
BENCHMARK(BM_CanonicalizationFromScratch)->Arg(4)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
