// Micro benchmarks: exact counters (triangles, formula-based 4-node, ESU
// enumeration) and baseline samplers (alias construction/sampling, wedge
// and path samples).

#include <benchmark/benchmark.h>

#include "baselines/alias.h"
#include "baselines/path_sampling.h"
#include "baselines/wedge_sampling.h"
#include "eval/datasets.h"
#include "exact/esu.h"
#include "exact/four_count.h"
#include "exact/triangle.h"
#include "util/rng.h"

namespace {

const grw::Graph& SmallGraph() {
  static const grw::Graph g = grw::MakeDatasetByName("brightkite-sim", 0.25);
  return g;
}

void BM_CountTriangles(benchmark::State& state) {
  const grw::Graph& g = SmallGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g, state.range(0) != 0,
                                            state.range(0) != 0)
                                 .total);
  }
  state.SetLabel(state.range(0) ? "with per-edge/node" : "total only");
}
BENCHMARK(BM_CountTriangles)->Arg(0)->Arg(1);

void BM_FourNodeFormulas(benchmark::State& state) {
  const grw::Graph& g = SmallGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(grw::CountFourNodeGraphlets(g));
  }
}
BENCHMARK(BM_FourNodeFormulas);

void BM_EsuEnumeration(benchmark::State& state) {
  const grw::Graph& g = SmallGraph();
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(grw::CountConnectedSubgraphs(g, k));
  }
}
BENCHMARK(BM_EsuEnumeration)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_AliasConstruction(benchmark::State& state) {
  const grw::Graph& g = SmallGraph();
  std::vector<double> weights(g.NumNodes());
  for (grw::VertexId v = 0; v < g.NumNodes(); ++v) {
    const double d = g.Degree(v);
    weights[v] = d * (d - 1) / 2;
  }
  for (auto _ : state) {
    grw::AliasTable table(weights);
    benchmark::DoNotOptimize(table.TotalWeight());
  }
}
BENCHMARK(BM_AliasConstruction);

void BM_WedgeSample(benchmark::State& state) {
  const grw::Graph& g = SmallGraph();
  grw::WedgeSampler sampler(g);
  grw::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.SampleClosedWedge(rng));
  }
}
BENCHMARK(BM_WedgeSample);

void BM_PathSample(benchmark::State& state) {
  const grw::Graph& g = SmallGraph();
  grw::PathSampler sampler(g);
  grw::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Run(64, rng).samples);
  }
  state.SetLabel("64 samples per iteration");
}
BENCHMARK(BM_PathSample);

}  // namespace

BENCHMARK_MAIN();
