// Out-of-core bench: estimation accuracy and throughput on sharded
// storage as the resident-byte budget shrinks.
//
// The headline invariant of the sharded path is that the *estimate*
// never moves: the walk sequence is a function of the seed alone, so a
// run that only ever holds 25% of the graph in memory produces
// bit-identical concentrations to the all-resident run — the budget
// buys memory, and pays only in page faults. This bench measures that
// price: steps/s and NRMSE at budget fractions {100%, 50%, 25%} of the
// total shard bytes, against the monolithic in-memory engine as the
// baseline.
//
// Flags:
//   --n N              Holme-Kim nodes (default 20000 -> ~80K edges)
//   --param M          Holme-Kim edges-per-node (default 4)
//   --shards S         shard count (default 8)
//   --steps N          steps per chain (default 100000)
//   --chains C         independent chains (default 32)
//   --threads T        worker threads (default 0 = all cores)
//   --dir PATH         scratch directory (default: system temp)
//   --check-identical  exit 1 unless every sharded run's merged
//                      concentrations are bit-identical to the
//                      monolithic baseline (CI smoke gate)
//   --keep             keep the generated files
//   --csv PATH         mirror the table to CSV
//   --json PATH        machine-readable results (BENCH_*.json format)
//
// Used as the Release-mode `sharded-smoke` CI job with
// --check-identical, which also exercises LRU eviction under real
// walk access patterns (the 25% run cannot hold the graph).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/engine.h"
#include "eval/ground_truth.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/sharded_access.h"
#include "graph/sharding.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct RunPoint {
  std::string name;
  double fraction = 1.0;    // of total shard bytes; <= 0 means monolithic
  double seconds = 0.0;
  double steps_per_s = 0.0;
  double nrmse = 0.0;
  grw::ShardStats shards;   // zeros for the monolithic baseline
  std::vector<double> concentrations;
};

// NRMSE across per-chain estimates of the ground truth's dominant type
// (the paper's protocol: pick a target graphlet, measure spread).
double NrmseOfDominantType(const grw::EngineResult& result,
                           const std::vector<double>& truth, int type) {
  std::vector<double> estimates;
  estimates.reserve(result.per_chain.size());
  for (const grw::EstimateResult& chain : result.per_chain) {
    estimates.push_back(chain.concentrations[static_cast<size_t>(type)]);
  }
  return grw::Nrmse(estimates, truth[static_cast<size_t>(type)]);
}

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const auto n = flags.GetUInt32("n", 20000);
  const auto param = flags.GetUInt32("param", 4);
  const auto num_shards = flags.GetUInt32("shards", 8);
  const uint64_t steps = flags.GetUInt64("steps", 100000);
  const int chains = flags.GetInt32("chains", 32);
  const auto threads = flags.GetUnsigned("threads", 0);
  const bool check_identical = flags.GetBool("check-identical");

  namespace fs = std::filesystem;
  const fs::path dir = flags.Has("dir")
                           ? fs::path(flags.GetString("dir", ""))
                           : fs::temp_directory_path() / "grw_sharded_bench";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string shard_dir = (dir / "graph.shards").string();

  grw::Rng rng(7);
  grw::WallTimer gen_timer;
  const grw::Graph g =
      grw::LargestConnectedComponent(grw::HolmeKim(n, param, 0.3, rng));
  std::fprintf(stderr, "[sharded] generated %s in %s\n",
               g.Summary().c_str(),
               grw::Table::Duration(gen_timer.Seconds()).c_str());

  grw::WallTimer shard_timer;
  grw::ShardingOptions shard_opt;
  shard_opt.num_shards = num_shards;
  const grw::ShardManifest manifest =
      grw::WriteShardedGraph(g, shard_dir, shard_opt);
  const uint64_t total_bytes = manifest.TotalShardBytes();
  std::fprintf(stderr, "[sharded] wrote %u shards (%.1f MiB) in %s\n",
               manifest.NumShards(),
               static_cast<double>(total_bytes) / (1024.0 * 1024.0),
               grw::Table::Duration(shard_timer.Seconds()).c_str());

  // Ground truth for the NRMSE column (cached under ./.gt_cache).
  grw::EstimatorConfig config;
  config.k = 4;
  config.d = 2;
  config.css = true;
  const std::string cache_key =
      "sharded_bench_n" + std::to_string(g.NumNodes()) + "_m" +
      std::to_string(g.NumEdges());
  const std::vector<double> truth =
      grw::CachedExactConcentrations(g, config.k, cache_key);
  const int target = static_cast<int>(
      std::max_element(truth.begin(), truth.end()) - truth.begin());

  grw::EngineOptions options;
  options.chains = chains;
  options.threads = threads;
  options.max_steps = steps;
  options.base_seed = 20240808;

  std::vector<RunPoint> points;

  // Monolithic in-memory baseline.
  {
    RunPoint p;
    p.name = "monolithic (in-memory)";
    p.fraction = -1.0;
    grw::EstimationEngine engine(g, config, options);
    grw::WallTimer t;
    const grw::EngineResult result = engine.Run();
    p.seconds = t.Seconds();
    p.steps_per_s =
        static_cast<double>(result.merged.steps) / p.seconds;
    p.nrmse = NrmseOfDominantType(result, truth, target);
    p.concentrations = result.merged.concentrations;
    points.push_back(std::move(p));
  }

  // Sharded runs at shrinking budgets.
  for (const double fraction : {1.0, 0.5, 0.25}) {
    RunPoint p;
    p.name = "sharded " + grw::Table::Num(fraction * 100.0, 0) + "% budget";
    p.fraction = fraction;
    grw::ShardStore::Options store_opt;
    store_opt.resident_budget_bytes = static_cast<uint64_t>(
        fraction * static_cast<double>(total_bytes));
    const grw::ShardStore store(manifest, store_opt);
    grw::EstimationEngine engine(store, config, options);
    grw::WallTimer t;
    const grw::EngineResult result = engine.Run();
    p.seconds = t.Seconds();
    p.steps_per_s =
        static_cast<double>(result.merged.steps) / p.seconds;
    p.nrmse = NrmseOfDominantType(result, truth, target);
    p.shards = result.shards;
    p.concentrations = result.merged.concentrations;
    points.push_back(std::move(p));
  }

  const RunPoint& base = points.front();
  grw::Table table("sharded bench: " + g.Summary() + ", " +
                   std::to_string(manifest.NumShards()) + " shards, " +
                   std::to_string(chains) + " chains x " +
                   std::to_string(steps) + " steps, truth type " +
                   std::to_string(target));
  table.SetHeader({"configuration", "steps/s", "slowdown", "NRMSE",
                   "hit rate", "evictions", "peak MiB"});
  for (const RunPoint& p : points) {
    const bool sharded = p.fraction > 0.0;
    table.AddRow(
        {p.name, grw::Table::Num(p.steps_per_s, 0),
         grw::Table::Num(base.steps_per_s / p.steps_per_s, 2) + "x",
         grw::Table::Num(p.nrmse, 4),
         sharded ? grw::Table::Num(100.0 * p.shards.HitRate(), 1) + "%"
                 : "-",
         sharded ? std::to_string(p.shards.evictions) : "-",
         sharded ? grw::Table::Num(static_cast<double>(
                                       p.shards.peak_resident_bytes) /
                                       (1024.0 * 1024.0),
                                   2)
                 : "-"});
  }
  table.Print();
  grw::bench::MaybeWriteCsv(flags, table);

  std::vector<grw::bench::JsonMetric> metrics;
  metrics.push_back({"monolithic_steps_per_s", base.steps_per_s, "1/s"});
  metrics.push_back({"monolithic_nrmse", base.nrmse, ""});
  for (size_t i = 1; i < points.size(); ++i) {
    const RunPoint& p = points[i];
    const std::string prefix =
        "budget" + grw::Table::Num(p.fraction * 100.0, 0) + "_";
    metrics.push_back({prefix + "steps_per_s", p.steps_per_s, "1/s"});
    metrics.push_back({prefix + "nrmse", p.nrmse, ""});
    metrics.push_back({prefix + "hit_rate", p.shards.HitRate(), ""});
    metrics.push_back({prefix + "evictions",
                       static_cast<double>(p.shards.evictions), ""});
    metrics.push_back(
        {prefix + "peak_resident_mib",
         static_cast<double>(p.shards.peak_resident_bytes) /
             (1024.0 * 1024.0),
         "MiB"});
  }
  grw::bench::MaybeWriteJson(flags, "sharded", g.Summary(), metrics);

  if (!flags.GetBool("keep")) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  if (check_identical) {
    for (size_t i = 1; i < points.size(); ++i) {
      if (points[i].concentrations != base.concentrations) {
        std::fprintf(stderr,
                     "FAIL: %s diverged from the monolithic estimate\n",
                     points[i].name.c_str());
        return 1;
      }
    }
    std::printf("OK: all sharded runs bit-identical to the monolithic "
                "estimate\n");
  }
  return 0;
}
