// Regenerates paper Figure 8: the framework's best 3-node method
// (SRW1CSSNB) against the adapted wedge sampling via Metropolis-Hastings
// (Wedge-MHRW, Algorithm 4) on restricted-access graphs.
//   (a) triangle-concentration NRMSE at a fixed step budget, all datasets;
//   (b) convergence on the two largest datasets.
// Note the crawl-cost asymmetry the paper highlights: Wedge-MHRW spends 3
// API calls per step vs 1 for the framework.

#include <cstdio>
#include <vector>

#include "baselines/wedge_mhrw.h"
#include "bench_common.h"
#include "core/estimator.h"
#include "engine/chain_pool.h"
#include "eval/experiment.h"
#include "graphlet/catalog.h"
#include "util/rng.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const uint64_t steps = flags.GetUInt64("steps", 20000);
  const int sims = grw::bench::SimCount(flags, 100, 1000);
  const auto& c3 = grw::GraphletCatalog::ForSize(3);
  const int triangle = c3.IdByName("triangle");
  const grw::EstimatorConfig method{3, 1, true, true};

  // Panel (a): accuracy at fixed steps.
  const auto graphs =
      grw::bench::LoadBenchGraphs(flags, grw::DatasetTier::kLarge);
  grw::Table table("Figure 8a: NRMSE of triangle concentration "
                   "(steps=" + std::to_string(steps) + ")");
  table.SetHeader({"Graph", "SRW1CSSNB", "Wedge-MHRW"});
  for (const auto& bg : graphs) {
    const auto truth =
        grw::CachedExactConcentrations(bg.graph, 3, bg.cache_key);
    const auto rw_chains = grw::RunConcentrationChains(
        bg.graph, method, steps, sims, 0xf8a);
    const auto mhrw_chains = grw::RunCustomChains(sims, [&](int chain) {
      grw::WedgeMhrw mhrw(bg.graph);
      mhrw.Reset(grw::DeriveSeed(0x3e46e, chain));
      mhrw.Run(steps);
      return mhrw.Concentrations();
    });
    table.AddRow({bg.name,
                  grw::Table::Num(
                      grw::NrmseOfType(rw_chains, truth, triangle), 4),
                  grw::Table::Num(
                      grw::NrmseOfType(mhrw_chains, truth, triangle), 4)});
  }
  table.Print();
  grw::bench::MaybeWriteCsv(flags, table);
  std::vector<grw::bench::JsonMetric> metrics;
  grw::bench::AppendTableMetrics(table, &metrics, "fixed_");

  // Panel (b): convergence on the two largest datasets.
  for (const char* dataset : {"twitter-sim", "sinaweibo-sim"}) {
    if (flags.Has("graph")) break;  // override mode has no registry names
    const double scale = flags.GetDouble("scale", 1.0);
    const grw::Graph g = grw::MakeDatasetByName(dataset, scale);
    const auto truth = grw::CachedExactConcentrations(
        g, 3, grw::DatasetCacheKey(dataset, scale));
    std::vector<uint64_t> grid;
    for (uint64_t s = 4000; s <= 20000; s += 4000) grid.push_back(s);

    grw::Table conv("Figure 8b: convergence on " + std::string(dataset));
    conv.SetHeader({"Steps", "SRW1CSSNB", "Wedge-MHRW"});
    const auto rw_curve = grw::ConvergenceNrmse(g, method, grid, sims,
                                                0xf8b, truth, triangle);
    // MHRW convergence: advance shared chains through the grid on the
    // engine's persistent pool.
    std::vector<std::vector<double>> mhrw_est(
        grid.size(), std::vector<double>(sims, 0.0));
    grw::ChainPool::Shared().ForEach(sims, [&](size_t chain) {
      grw::WedgeMhrw mhrw(g);
      mhrw.Reset(grw::DeriveSeed(0xadf8b, chain));
      uint64_t done = 0;
      for (size_t p = 0; p < grid.size(); ++p) {
        mhrw.Run(grid[p] - done);
        done = grid[p];
        mhrw_est[p][chain] = mhrw.Concentrations()[triangle];
      }
    });
    for (size_t p = 0; p < grid.size(); ++p) {
      conv.AddRow({grw::Table::Int(static_cast<long long>(grid[p])),
                   grw::Table::Num(rw_curve[p], 4),
                   grw::Table::Num(grw::Nrmse(mhrw_est[p],
                                              truth[triangle]), 4)});
    }
    conv.Print();
    grw::bench::AppendTableMetrics(
        conv, &metrics,
        grw::bench::MetricNameFragment(dataset) + "_steps");
  }
  std::printf("crawl cost note: Wedge-MHRW spends %d API calls per step "
              "vs 1 for SRW1CSSNB (Section 6.3.3)\n",
              grw::WedgeMhrw::kApiCallsPerStep);
  grw::bench::MaybeWriteJson(flags, "bench_fig8_wedge_mhrw",
                             "steps=" + std::to_string(steps) +
                                 ", sims=" + std::to_string(sims),
                             metrics);
  return 0;
}
