// Graph comparison via graphlet kernels — the paper's Section 6.4
// application. Classifies an unknown network as "social-network-like" or
// "news-media-like" by comparing its estimated 4-node graphlet
// concentration vector against reference networks, using only a small
// random-walk sample from each graph.
//
// Usage:
//   graph_comparison [--steps N] [--graph edge_list.txt]
//
// Without --graph, a fresh clustered network (not in the reference set)
// plays the unknown.

#include <cstdio>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/paper_ids.h"
#include "eval/datasets.h"
#include "eval/similarity.h"
#include "graph/generators.h"
#include "graph/source.h"
#include "graphlet/catalog.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

std::vector<double> EstimateSignature(const grw::Graph& g, uint64_t steps,
                                      uint64_t seed) {
  grw::EstimatorConfig config{4, 2, true, false};  // SRW2CSS
  return grw::GraphletEstimator::Estimate(g, config, steps, seed)
      .concentrations;
}

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const uint64_t steps = flags.GetUInt64("steps", 50000);

  // Reference networks with known character.
  const std::vector<std::pair<std::string, std::string>> references = {
      {"facebook-sim", "social network"},
      {"flickr-sim", "social network"},
      {"twitter-sim", "news medium"},
      {"sinaweibo-sim", "news medium"},
  };

  // The unknown graph.
  grw::Graph unknown;
  std::string unknown_name;
  if (flags.Has("graph")) {
    unknown_name = flags.GetString("graph", "");
    unknown = grw::GraphSource::Open(unknown_name).graph();
  } else {
    unknown_name = "mystery (Holme-Kim, clustered)";
    grw::Rng rng(0xabcdef);
    unknown = grw::HolmeKim(20000, 8, 0.55, rng);
  }
  std::printf("unknown graph %s: %s\n", unknown_name.c_str(),
              unknown.Summary().c_str());
  const auto unknown_sig = EstimateSignature(unknown, steps, 1);

  grw::Table table("graphlet-kernel similarity of the unknown graph "
                   "(SRW2CSS, " + std::to_string(steps) + " steps/graph)");
  table.SetHeader({"reference", "character", "similarity"});
  double best = -1.0;
  std::string verdict;
  for (const auto& [name, character] : references) {
    const grw::Graph ref = grw::MakeDatasetByName(name, 0.5);
    const auto sig = EstimateSignature(ref, steps, 2);
    const double sim = grw::GraphletKernelSimilarity(unknown_sig, sig);
    table.AddRow({name, character, grw::Table::Num(sim, 4)});
    if (sim > best) {
      best = sim;
      verdict = character;
    }
  }
  table.Print();

  // Show the signature itself in paper order.
  grw::Table sig_table("estimated 4-node signature of the unknown graph");
  sig_table.SetHeader({"graphlet", "concentration"});
  const auto& order = grw::PaperOrder(4);
  for (int pos = 0; pos < 6; ++pos) {
    sig_table.AddRow({grw::PaperLabel(4, pos),
                      grw::Table::Sci(unknown_sig[order[pos]])});
  }
  sig_table.Print();

  std::printf("verdict: the unknown graph looks like a %s "
              "(best similarity %.4f)\n", verdict.c_str(), best);
  return 0;
}
