// OSN crawling scenario: estimate the clustering coefficient and triangle
// concentration of a network that is only reachable through friend-list
// APIs — the paper's motivating use case (Sections 1 and 6.3.3).
//
// The framework crawler walks the graph through CrawlAccess — the real
// access layer: a local cache of every friend list it fetched, per-query
// accounting, and a distinct-query budget that stops the walk when the
// API allowance is spent, so its cost column is *measured*. The adapted
// Wedge-MHRW baseline runs at its documented cost model of 3 API calls
// per step (wedge_mhrw.h), so its step budget is api_budget / 3.
//
// Usage:
//   osn_crawler [--graph edge_list.txt] [--budget N_api_calls]

#include <cmath>
#include <cstdio>

#include "baselines/wedge_mhrw.h"
#include "core/estimator.h"
#include "eval/datasets.h"
#include "exact/triangle.h"
#include "graph/access.h"
#include "graph/source.h"
#include "graphlet/catalog.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

// Clustering coefficient from triangle concentration (paper Section 2.1):
// cc = 3 c32 / (2 c32 + 1).
double ClusteringFromConcentration(double c32) {
  return 3.0 * c32 / (2.0 * c32 + 1.0);
}

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const uint64_t api_budget = flags.GetUInt64("budget", 60000);

  grw::Graph graph;
  const std::string path = flags.GetString("graph", "");
  if (!path.empty()) {
    graph = grw::GraphSource::Open(path).graph();
  } else {
    graph = grw::MakeDatasetByName("flickr-sim", 0.5);
  }
  std::printf("hidden network (crawler cannot see this): %s\n",
              graph.Summary().c_str());

  const grw::GraphletCatalog& c3 = grw::GraphletCatalog::ForSize(3);
  const int triangle = c3.IdByName("triangle");

  // The framework walk, through the crawl access layer: every neighbor
  // list it touches is fetched once and kept (unbounded cache), and the
  // walk stops by itself if it ever spends the full distinct-query
  // budget. Window edge-tests and CSS degree reads are answered from the
  // cache, so a step costs far less than one API call on average.
  grw::CrawlAccess::Options crawl_opt;
  crawl_opt.query_budget = api_budget;
  grw::CrawlAccess api(graph, crawl_opt);
  grw::EstimatorConfig config{3, 1, true, true, 0};  // SRW1CSSNB
  grw::GraphletEstimatorT<grw::CrawlAccess> estimator(api, config);
  estimator.Reset(2026);
  // The distinct-query budget is the binding constraint: the cache makes
  // most steps free, so the walk gets many more than api_budget steps
  // out of the allowance. The step count is only a generous safety cap
  // (a budget above the reachable node count can never be spent).
  estimator.Run(20 * api_budget);
  const double rw_c32 = estimator.Result().concentrations[triangle];
  const grw::CrawlStats& cost = api.stats();

  // The MHRW baseline costs 3 calls per step -> one third of the steps.
  grw::WedgeMhrw mhrw(graph);
  mhrw.Reset(2027);
  mhrw.Run(api_budget / grw::WedgeMhrw::kApiCallsPerStep);
  const double mhrw_c32 = mhrw.Concentrations()[triangle];

  // What the operator (with full data) would compute.
  const double exact_cc = grw::GlobalClusteringCoefficient(graph);
  const double exact_c32 = exact_cc / (3.0 - 2.0 * exact_cc);

  grw::Table table("crawl results at a budget of " +
                   std::to_string(api_budget) + " API calls");
  table.SetHeader({"quantity", "SRW1CSSNB", "Wedge-MHRW", "exact"});
  table.AddRow({"triangle concentration c32", grw::Table::Num(rw_c32, 5),
                grw::Table::Num(mhrw_c32, 5),
                grw::Table::Num(exact_c32, 5)});
  table.AddRow({"clustering coefficient",
                grw::Table::Num(ClusteringFromConcentration(rw_c32), 5),
                grw::Table::Num(ClusteringFromConcentration(mhrw_c32), 5),
                grw::Table::Num(exact_cc, 5)});
  table.AddRow({"relative error (c32)",
                grw::Table::Num(std::abs(rw_c32 - exact_c32) / exact_c32, 4),
                grw::Table::Num(std::abs(mhrw_c32 - exact_c32) / exact_c32,
                                4),
                "-"});
  table.Print();
  std::printf(
      "framework crawl cost: %llu distinct friend-list fetches for %llu "
      "steps (%.1f%% served from the local cache)%s\n",
      static_cast<unsigned long long>(cost.distinct_fetches),
      static_cast<unsigned long long>(estimator.Steps()),
      100.0 * cost.HitRate(),
      api.BudgetExhausted() ? " — budget exhausted" : "");
  std::printf("nodes touched: %.2f%% of the graph\n",
              100.0 * static_cast<double>(cost.distinct_fetches) /
                  graph.NumNodes());
  return 0;
}
