// OSN crawling scenario: estimate the clustering coefficient and triangle
// concentration of a network that is only reachable through friend-list
// APIs — the paper's motivating use case (Sections 1 and 6.3.3).
//
// The crawler walks the graph through the RestrictedAccess facade (which
// counts API calls), runs the paper's best 3-node method (SRW1CSSNB) and
// the adapted Wedge-MHRW baseline at the same *API budget* (not the same
// step budget: MHRW costs 3 calls per step), and reports what each learns
// about the network.
//
// Usage:
//   osn_crawler [--graph edge_list.txt] [--budget N_api_calls]

#include <cmath>
#include <cstdio>

#include "baselines/wedge_mhrw.h"
#include "core/estimator.h"
#include "eval/datasets.h"
#include "exact/triangle.h"
#include "graph/access.h"
#include "graph/format.h"
#include "graphlet/catalog.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

// Clustering coefficient from triangle concentration (paper Section 2.1):
// cc = 3 c32 / (2 c32 + 1).
double ClusteringFromConcentration(double c32) {
  return 3.0 * c32 / (2.0 * c32 + 1.0);
}

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const uint64_t api_budget = flags.GetInt("budget", 60000);

  grw::Graph graph;
  const std::string path = flags.GetString("graph", "");
  if (!path.empty()) {
    graph = grw::LoadGraph(path);
  } else {
    graph = grw::MakeDatasetByName("flickr-sim", 0.5);
  }
  std::printf("hidden network (crawler cannot see this): %s\n",
              graph.Summary().c_str());

  const grw::GraphletCatalog& c3 = grw::GraphletCatalog::ForSize(3);
  const int triangle = c3.IdByName("triangle");

  // The framework walk costs ~1 neighbor-fetch per step.
  grw::RestrictedAccess api(graph);
  grw::EstimatorConfig config{3, 1, true, true};  // SRW1CSSNB
  grw::GraphletEstimator estimator(graph, config);
  estimator.Reset(2026);
  estimator.Run(api_budget);  // 1 call/step in the crawl-cost model
  const double rw_c32 = estimator.Result().concentrations[triangle];

  // The MHRW baseline costs 3 calls per step -> one third of the steps.
  grw::WedgeMhrw mhrw(graph);
  mhrw.Reset(2027);
  mhrw.Run(api_budget / grw::WedgeMhrw::kApiCallsPerStep);
  const double mhrw_c32 = mhrw.Concentrations()[triangle];

  // What the operator (with full data) would compute.
  const double exact_cc = grw::GlobalClusteringCoefficient(graph);
  const double exact_c32 = exact_cc / (3.0 - 2.0 * exact_cc);

  grw::Table table("crawl results at a budget of " +
                   std::to_string(api_budget) + " API calls");
  table.SetHeader({"quantity", "SRW1CSSNB", "Wedge-MHRW", "exact"});
  table.AddRow({"triangle concentration c32", grw::Table::Num(rw_c32, 5),
                grw::Table::Num(mhrw_c32, 5),
                grw::Table::Num(exact_c32, 5)});
  table.AddRow({"clustering coefficient",
                grw::Table::Num(ClusteringFromConcentration(rw_c32), 5),
                grw::Table::Num(ClusteringFromConcentration(mhrw_c32), 5),
                grw::Table::Num(exact_cc, 5)});
  table.AddRow({"relative error (c32)",
                grw::Table::Num(std::abs(rw_c32 - exact_c32) / exact_c32, 4),
                grw::Table::Num(std::abs(mhrw_c32 - exact_c32) / exact_c32,
                                4),
                "-"});
  table.Print();
  std::printf("nodes touched: about %.2f%% of the graph per chain\n",
              100.0 * static_cast<double>(api_budget) / graph.NumNodes());
  return 0;
}
