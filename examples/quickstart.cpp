// Quickstart: estimate 4-node graphlet concentrations of a graph with the
// paper's recommended method (SRW2CSS) and compare with exact counts.
//
// Usage:
//   quickstart [--graph edge_list.txt] [--steps N] [--k 3|4|5] [--d D]
//
// Without --graph a synthetic clustered social graph is generated, so the
// example runs out of the box.

#include <cstdio>
#include <string>

#include "core/estimator.h"
#include "core/paper_ids.h"
#include "eval/datasets.h"
#include "exact/exact.h"
#include "graph/source.h"
#include "graphlet/catalog.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const int k = flags.GetInt32("k", 4);
  const int d = flags.GetInt32("d", 2);
  const uint64_t steps = flags.GetUInt64("steps", 200000);

  // 1. Load or synthesize a graph (simple, connected).
  grw::Graph graph;
  const std::string path = flags.GetString("graph", "");
  if (!path.empty()) {
    graph = grw::GraphSource::Open(path).graph();  // format auto-detected
  } else {
    graph = grw::MakeDatasetByName("brightkite-sim");
  }
  std::printf("graph: %s\n", graph.Summary().c_str());

  // 2. Configure the estimator: walk on G(d), CSS re-weighting on.
  grw::EstimatorConfig config;
  config.k = k;
  config.d = d;
  config.css = d <= 2;  // CSS tables exist for d <= 2 (cheap path)
  grw::GraphletEstimator estimator(graph, config);
  estimator.Reset(/*seed=*/42);

  grw::WallTimer timer;
  estimator.Run(steps);
  const grw::EstimateResult result = estimator.Result();
  std::printf("%s: %llu steps in %.1f ms (%llu valid samples)\n",
              config.Name().c_str(),
              static_cast<unsigned long long>(result.steps), timer.Millis(),
              static_cast<unsigned long long>(result.valid_samples));

  // 3. Compare against exact ground truth.
  const auto exact = grw::ExactConcentrations(graph, k);
  const auto& order = grw::PaperOrder(k);
  const auto& catalog = grw::GraphletCatalog::ForSize(k);
  grw::Table table("estimated vs exact " + std::to_string(k) +
                   "-node graphlet concentration");
  table.SetHeader({"graphlet", "name", "estimated", "exact", "rel.err"});
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const int id = order[pos];
    const double est = result.concentrations[id];
    const double ref = exact[id];
    table.AddRow({grw::PaperLabel(k, static_cast<int>(pos)),
                  catalog.Get(id).name, grw::Table::Sci(est),
                  grw::Table::Sci(ref),
                  ref > 0 ? grw::Table::Num(std::abs(est - ref) / ref, 3)
                          : "n/a"});
  }
  table.Print();
  return 0;
}
