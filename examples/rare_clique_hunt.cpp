// Estimating the concentration of rare dense graphlets (4- and 5-node
// cliques) and watching the estimate converge — the hardest case in the
// paper's evaluation (cliques have the smallest concentration, Table 5)
// and the one where the choice of walk dimension d matters most.
//
// The example runs SRW2CSS (the paper's recommendation) and PSRW
// (d = k-1, the prior state of the art) side by side on the same budget
// and prints the running estimates, demonstrating the accuracy gap that
// Figure 6 quantifies.
//
// Usage:
//   rare_clique_hunt [--k 4|5] [--steps N] [--graph edge_list.txt]

#include <cstdio>

#include "core/estimator.h"
#include "core/paper_ids.h"
#include "eval/datasets.h"
#include "eval/ground_truth.h"
#include "graph/source.h"
#include "graphlet/catalog.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const int k = flags.GetInt32("k", 4);
  const uint64_t steps = flags.GetUInt64("steps", 20000);
  if (k != 4 && k != 5) {
    std::fprintf(stderr, "--k must be 4 or 5\n");
    return 1;
  }

  grw::Graph graph;
  std::string cache_key;
  if (flags.Has("graph")) {
    graph = grw::GraphSource::Open(flags.GetString("graph", "")).graph();
    cache_key = "file_n" + std::to_string(graph.NumNodes()) + "_m" +
                std::to_string(graph.NumEdges());
  } else {
    graph = grw::MakeDatasetByName("epinion-sim");
    cache_key = grw::DatasetCacheKey("epinion-sim", 1.0);
  }
  std::printf("graph: %s\n", graph.Summary().c_str());

  // The clique is the last paper id (g46 / g5_21).
  const auto& order = grw::PaperOrder(k);
  const int clique = order.back();
  const auto truth = grw::CachedExactConcentrations(graph, k, cache_key);
  std::printf("exact %d-clique concentration: %.3e\n", k, truth[clique]);

  grw::EstimatorConfig recommended{k, 2, true, false};  // SRW2CSS
  grw::EstimatorConfig psrw{k, k - 1, false, false};    // PSRW
  grw::GraphletEstimator est_recommended(graph, recommended);
  grw::GraphletEstimator est_psrw(graph, psrw);
  est_recommended.Reset(11);
  est_psrw.Reset(12);

  grw::Table table("running estimate of the " + std::to_string(k) +
                   "-clique concentration");
  table.SetHeader({"steps", recommended.Name(), psrw.Name(),
                   "rel.err " + recommended.Name(),
                   "rel.err " + psrw.Name()});
  const int checkpoints = 10;
  for (int c = 1; c <= checkpoints; ++c) {
    const uint64_t target = steps * c / checkpoints;
    est_recommended.Run(target - est_recommended.Steps());
    est_psrw.Run(target - est_psrw.Steps());
    const double a = est_recommended.Result().concentrations[clique];
    const double b = est_psrw.Result().concentrations[clique];
    table.AddRow(
        {grw::Table::Int(static_cast<long long>(target)),
         grw::Table::Sci(a), grw::Table::Sci(b),
         grw::Table::Num(std::abs(a - truth[clique]) / truth[clique], 3),
         grw::Table::Num(std::abs(b - truth[clique]) / truth[clique], 3)});
  }
  table.Print();
  std::printf("note: single chains shown for illustration; the NRMSE "
              "benches average hundreds (bench_fig6_convergence).\n");
  return 0;
}
