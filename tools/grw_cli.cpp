// grw — command-line front end for the library.
//
// Subcommands:
//   grw datasets
//       List the built-in synthetic datasets (paper Table 5 analogs).
//   grw generate <dataset-or-model> [--out FILE] [--scale S]
//       [--n N --param M --triad P --seed S]
//       Write a synthetic graph as an edge list. <dataset-or-model> is a
//       registry name (e.g. epinion-sim) or one of: er, ba, hk, ws.
//   grw convert <input> <output.grwb> [--relabel-degree] [--lcc 0|1]
//       [--verify 0|1]
//       Convert an edge list (or registry dataset name) to a `.grwb`
//       binary CSR snapshot that loads zero-copy via mmap. Convert once,
//       then point every other command and bench at the snapshot.
//   grw shard <graph> <out-dir> [--shards N | --target-shard-mb M]
//       [--relabel-degree] [--lcc 0|1]
//       Partition a graph into a sharded out-of-core snapshot
//       (graph/sharding.h): <out-dir>/MANIFEST.grws plus checksummed
//       shard-NNNNN.grws files, every file written crash-safe. Balanced
//       by half-edge mass across --shards, or cut at --target-shard-mb
//       per shard (default 64). `estimate` and `grw_serve` then serve
//       the directory under a resident-byte budget.
//   grw info <graph>
//       Basic statistics of a graph (after simplification + LCC). For a
//       sharded manifest (or its directory): manifest-level stats, the
//       log2 degree histogram, and a per-shard table of vertex ranges,
//       sizes, and checksums — no shard payload is read unless
//       --verify is given.
//   grw exact <graph> --k K
//       Exact induced graphlet counts and concentrations.
//   grw estimate <graph> --k K [--d D] [--css 0|1] [--nb 0|1]
//       [--steps N] [--seed S] [--chains C] [--threads T] [--counts]
//       [--target-nrmse X] [--max-steps N] [--quiet] [--no-index]
//       [--batch] [--lanes W]
//       [--crawl] [--budget-queries B] [--cache-size C] [--latency-us L]
//       [--fail-prob P] [--fail-retries R] [--fail-backoff-us U]
//       [--resident-budget-mb M] [--locality-seed]
//       Random-walk estimation (the paper's Algorithm 1) on the parallel
//       estimation engine: --chains independent chains merged into one
//       estimate; with --target-nrmse the engine stops as soon as the
//       batch-means relative standard error of every non-negligible
//       concentration is below X (capped at --max-steps per chain,
//       default --steps). Any crawl flag simulates the paper's
//       restricted-access setting: each chain reads the graph through a
//       private LRU neighbor cache of --cache-size lists (0 = unbounded)
//       with per-query accounting and optional simulated latency, and
//       --budget-queries stops the run once B distinct neighbor-list
//       fetches were spent across chains. --fail-prob adds a transient
//       fetch-failure model (bounded retries, exponential backoff +
//       jitter, deterministic per chain) whose retries/giveups/backoff
//       land in the crawl-cost report. Estimates are bit-identical to
//       the full-access run; only cost and stopping change. --batch runs
//       chains through the W-lane SoA walk kernel (walk/batched_walk.h,
//       --lanes per unit, default 8) — same estimates bit-for-bit, higher
//       single-thread throughput via cross-lane prefetch + SIMD probes.
//       --raw swaps the table for machine-readable `label value` lines
//       (%.17g), diffable against `grw query --raw`. On a sharded graph
//       (a `grw shard` directory or its MANIFEST.grws) the engine runs
//       out-of-core through the shard LRU: --resident-budget-mb caps
//       resident shard bytes (0 = unbounded) and --locality-seed starts
//       each chain inside an affinity shard (better residency; changes
//       start positions, so estimates differ from — but converge like —
//       the default seeding). Estimates under any budget are
//       bit-identical to the monolithic run; a residency report follows
//       the table. --counts, --batch, and crawl flags need the
//       monolithic graph and are rejected on sharded inputs.
//   grw query <id> [--host H] [--port P] [--raw] [--send 'LINE']
//       [estimation flags as in `estimate`] [--deadline-ms MS]
//       [--tenant NAME]
//       Ask a running `grw_serve` daemon for an estimate over the line
//       protocol (src/serve/protocol.h). The request mirrors `estimate`'s
//       defaults field for field, so the served answer is bit-identical
//       to a local run on the same snapshot. --send bypasses the flag
//       mapping and ships a raw protocol line (PING, LIST, ...).
//       --connect-timeout-ms/--read-timeout-ms bound every wait (defaults
//       5000/30000, -1 = forever) and --retries bounds the resilience
//       loop: transport failures reconnect + resend, RETRY_AFTER load
//       sheds honor the server's backoff hint, other errors are final.
//
// Every place a <graph> is taken, text edge lists, `.grwb` snapshots, and
// registry dataset names are all accepted (format auto-detected).
// Every command accepts --help-free flag forms --name value / --name=value.
//
// `estimate` and `exact` attach the adjacency acceleration index
// (graph/adjacency.h) after loading — estimates are bit-identical with or
// without it, so --no-index exists purely for A/B timing.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/paper_ids.h"
#include "core/rsize.h"
#include "engine/engine.h"
#include "eval/datasets.h"
#include "exact/exact.h"
#include "exact/triangle.h"
#include "graph/adjacency.h"
#include "graph/builder.h"
#include "graph/format.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/sharded_access.h"
#include "graph/sharding.h"
#include "graph/source.h"
#include "graphlet/catalog.h"
#include "serve/client.h"
#include "serve/json.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

int Usage() {
  std::fputs(
      "usage: grw <command> [args]\n"
      "  datasets                         list built-in synthetic datasets\n"
      "  generate <name|er|ba|hk|ws> ...  write a synthetic edge list\n"
      "  convert <graph> <out.grwb> [--relabel-degree] [--lcc 0|1]\n"
      "                                   write a binary CSR snapshot\n"
      "                                   (zero-copy mmap load)\n"
      "  shard <graph> <out-dir> [--shards N | --target-shard-mb M]\n"
      "        [--relabel-degree] [--lcc 0|1]\n"
      "                                   partition into an out-of-core\n"
      "                                   sharded snapshot (MANIFEST.grws\n"
      "                                   + checksummed shard files)\n"
      "  info <graph>                     graph statistics (sharded\n"
      "                                   manifest: per-shard table)\n"
      "  exact <graph> --k K              exact graphlet statistics\n"
      "  estimate <graph> --k K [--chains C] [--target-nrmse X]\n"
      "           [--max-steps N] ...     random-walk estimation with\n"
      "                                   convergence-driven stopping\n"
      "           [--batch] [--lanes W]  batched SoA walk kernel: same\n"
      "                                   estimates, lockstep lanes\n"
      "           [--crawl] [--budget-queries B] [--cache-size C]\n"
      "           [--latency-us L]         crawl scenario: LRU-cached\n"
      "                                   restricted access, stop at B\n"
      "                                   distinct neighbor fetches\n"
      "           [--fail-prob P] [--fail-retries R] [--fail-backoff-us U]\n"
      "                                   transient fetch failures with\n"
      "                                   bounded retry + backoff (cost\n"
      "                                   model; estimates unchanged)\n"
      "           [--raw]                  `label value` lines instead of\n"
      "                                   the table (diffable vs query)\n"
      "           [--resident-budget-mb M] [--locality-seed]\n"
      "                                   sharded graphs run out-of-core\n"
      "                                   under a resident shard-byte\n"
      "                                   budget (0 = unbounded), with\n"
      "                                   optional per-chain affinity-\n"
      "                                   shard seeding\n"
      "  query <id> [--host H] [--port P] [--raw] [--send 'LINE']\n"
      "           [estimation flags] [--deadline-ms MS] [--tenant NAME]\n"
      "                                   query a running grw_serve daemon;\n"
      "                                   results are bit-identical to a\n"
      "                                   local `estimate` run\n"
      "           [--connect-timeout-ms MS] [--read-timeout-ms MS]\n"
      "           [--retries R]            bounded waits (defaults 5000 /\n"
      "                                   30000, -1 = forever) and retries\n"
      "                                   on transport errors + RETRY_AFTER\n"
      "                                   load sheds (default 4)\n"
      "  <graph> may be a text edge list, a .grwb snapshot, a sharded\n"
      "  manifest (a `grw shard` directory or its MANIFEST.grws), or a\n"
      "  dataset name from `grw datasets`.\n",
      stderr);
  return 2;
}

// One open path for every command: registry dataset names become
// in-memory sources, everything else goes through GraphSource::Open's
// auto-detection (sharded manifest / .grwb snapshot / text edge list).
grw::GraphSource OpenPositional(const grw::Flags& flags, size_t index,
                                const grw::OpenOptions& options) {
  if (flags.positional().size() <= index) {
    throw std::runtime_error("missing <graph> argument");
  }
  const std::string& path = flags.positional()[index];
  // Registry names are accepted anywhere a file is.
  if (grw::FindDataset(path).has_value()) {
    return grw::GraphSource::FromGraph(grw::MakeDatasetByName(path, 1.0),
                                       path);
  }
  return grw::GraphSource::Open(path, options);
}

// The resident-graph variant for commands that need the whole CSR
// (exact enumeration, global statistics). Rejects sharded sources with
// a pointer at the commands that do serve them.
grw::Graph LoadPositional(const grw::Flags& flags, size_t index) {
  grw::OpenOptions options;
  options.build_index = false;  // commands attach their own (--no-index)
  const grw::GraphSource source = OpenPositional(flags, index, options);
  if (source.sharded()) {
    throw std::runtime_error(
        "'" + flags.positional()[index] +
        "' is sharded (out-of-core); this command needs the whole graph "
        "resident. Use `grw estimate` / `grw_serve` on sharded graphs, "
        "or `grw convert` the original input to a monolithic .grwb.");
  }
  return source.graph();
}

int CmdDatasets() {
  grw::Table table("built-in datasets (synthetic analogs of paper Table 5)");
  table.SetHeader({"name", "stands in for", "tier", "model"});
  for (const auto& spec : grw::DatasetRegistry()) {
    const char* tier = spec.tier == grw::DatasetTier::kSmall    ? "small"
                       : spec.tier == grw::DatasetTier::kMedium ? "medium"
                                                                : "large";
    const char* model =
        spec.model == grw::DatasetSpec::Model::kHolmeKim ? "holme-kim"
        : spec.model == grw::DatasetSpec::Model::kBarabasiAlbert
            ? "barabasi-albert"
            : "erdos-renyi";
    table.AddRow({spec.name, spec.paper_name, tier, model});
  }
  table.Print();
  return 0;
}

int CmdGenerate(const grw::Flags& flags) {
  if (flags.positional().size() < 2) return Usage();
  const std::string& kind = flags.positional()[1];
  const std::string out = flags.GetString("out", kind + ".edges");
  grw::Graph g;
  if (grw::FindDataset(kind).has_value()) {
    g = grw::MakeDatasetByName(kind, flags.GetDouble("scale", 1.0));
  } else {
    grw::Rng rng(flags.GetInt("seed", 1));
    const auto n = flags.GetUInt32("n", 10000);
    const auto param = flags.GetUInt32("param", 5);
    if (kind == "er") {
      g = grw::ErdosRenyi(n, static_cast<uint64_t>(n) * param / 2, rng);
    } else if (kind == "ba") {
      g = grw::BarabasiAlbert(n, param, rng);
    } else if (kind == "hk") {
      g = grw::HolmeKim(n, param, flags.GetDouble("triad", 0.5), rng,
                        flags.GetUInt32("cap", 0));
    } else if (kind == "ws") {
      g = grw::WattsStrogatz(n, param, flags.GetDouble("beta", 0.1), rng);
    } else {
      std::fprintf(stderr, "unknown model/dataset: %s\n", kind.c_str());
      return 2;
    }
  }
  grw::SaveEdgeList(g, out);
  std::printf("wrote %s: %s\n", out.c_str(), g.Summary().c_str());
  return 0;
}

int CmdConvert(const grw::Flags& flags) {
  if (flags.positional().size() < 3) return Usage();
  const std::string& in = flags.positional()[1];
  const std::string& out = flags.positional()[2];

  grw::WallTimer load_timer;
  grw::Graph g;
  uint32_t grwb_flags = 0;
  if (grw::FindDataset(in).has_value()) {
    g = grw::MakeDatasetByName(in, flags.GetDouble("scale", 1.0));
  } else {
    grw::OpenOptions open;
    open.build_index = false;
    open.largest_cc = flags.GetBool("lcc", true);
    const grw::GraphSource source = grw::GraphSource::Open(in, open);
    if (source.sharded()) {
      throw std::runtime_error(
          "'" + in + "' is already sharded; convert the original edge "
          "list or .grwb snapshot instead");
    }
    // Snapshot-to-snapshot conversion carries the relabel flag forward:
    // a degree-relabeled input stays marked as such in the copy.
    if (source.degree_relabeled()) {
      grwb_flags |= grw::kGrwbFlagDegreeRelabeled;
    }
    g = source.graph();
  }
  const double load_s = load_timer.Seconds();

  if (flags.GetBool("relabel-degree")) {
    g = grw::RelabelByDegree(g);
    grwb_flags |= grw::kGrwbFlagDegreeRelabeled;
  }

  grw::WallTimer save_timer;
  grw::SaveGraphBinary(g, out, grwb_flags);
  const double save_s = save_timer.Seconds();
  if (flags.GetBool("verify", true)) {
    // Full checksum read-back: cheap relative to the conversion, and a
    // corrupted snapshot discovered now is a bench run saved later.
    grw::OpenOptions check;
    check.build_index = false;
    check.verify = true;
    (void)grw::GraphSource::Open(out, check);
  }
  const grw::GrwbInfo info = grw::InspectGraphBinary(out);
  std::printf("wrote %s: %s%s, %.1f MiB (load %s, convert+write %s)\n",
              out.c_str(), g.Summary().c_str(),
              info.DegreeRelabeled() ? ", degree-relabeled" : "",
              static_cast<double>(info.file_bytes) / (1024.0 * 1024.0),
              grw::Table::Duration(load_s).c_str(),
              grw::Table::Duration(save_s).c_str());
  return 0;
}

int CmdShard(const grw::Flags& flags) {
  if (flags.positional().size() < 3) return Usage();
  const std::string& in = flags.positional()[1];
  const std::string& dir = flags.positional()[2];
  if (flags.Has("shards") && flags.Has("target-shard-mb")) {
    throw std::runtime_error(
        "--shards and --target-shard-mb are mutually exclusive");
  }

  grw::WallTimer load_timer;
  grw::Graph g;
  uint32_t grwb_flags = 0;
  if (grw::FindDataset(in).has_value()) {
    g = grw::MakeDatasetByName(in, flags.GetDouble("scale", 1.0));
  } else {
    grw::OpenOptions open;
    open.build_index = false;
    open.largest_cc = flags.GetBool("lcc", true);
    const grw::GraphSource source = grw::GraphSource::Open(in, open);
    if (source.sharded()) {
      throw std::runtime_error(
          "'" + in + "' is already sharded; re-shard from the edge list "
          "or monolithic .grwb it was built from");
    }
    if (source.degree_relabeled()) {
      grwb_flags |= grw::kGrwbFlagDegreeRelabeled;
    }
    g = source.graph();
  }
  const double load_s = load_timer.Seconds();

  if (flags.GetBool("relabel-degree")) {
    g = grw::RelabelByDegree(g);
    grwb_flags |= grw::kGrwbFlagDegreeRelabeled;
  }

  grw::ShardingOptions sharding;
  sharding.flags = grwb_flags;
  if (flags.Has("shards")) {
    const int64_t shards = flags.GetInt("shards", 0);
    if (shards < 1 || static_cast<uint64_t>(shards) > g.NumNodes()) {
      throw std::runtime_error("--shards must be in [1, num nodes]");
    }
    sharding.num_shards = static_cast<uint32_t>(shards);
  } else {
    const int64_t target_mb = flags.GetInt("target-shard-mb", 64);
    if (target_mb < 1) {
      throw std::runtime_error("--target-shard-mb must be >= 1");
    }
    sharding.target_shard_bytes = static_cast<uint64_t>(target_mb) << 20;
  }

  grw::WallTimer write_timer;
  const grw::ShardManifest manifest =
      grw::WriteShardedGraph(g, dir, sharding);
  std::printf(
      "wrote %s: %s%s, %u shard(s), %.1f MiB total "
      "(load %s, shard+write %s)\n",
      manifest.path.c_str(), g.Summary().c_str(),
      manifest.DegreeRelabeled() ? ", degree-relabeled" : "",
      manifest.NumShards(),
      static_cast<double>(manifest.TotalShardBytes()) / (1024.0 * 1024.0),
      grw::Table::Duration(load_s).c_str(),
      grw::Table::Duration(write_timer.Seconds()).c_str());
  return 0;
}

// `grw info` on a sharded manifest: everything here comes from the
// manifest alone — shard balance is inspectable without faulting a
// single shard page. --verify additionally opens and checksums every
// shard (the out-of-core analogue of `convert --verify`'s read-back).
int ShardedInfo(const std::string& path, bool verify) {
  const grw::ShardManifest manifest = grw::LoadShardManifest(path, verify);
  grw::Table table("sharded graph statistics" +
                   std::string(verify ? " (shards verified)" : ""));
  table.SetHeader({"quantity", "value"});
  table.AddRow({"format", "grws v" + std::to_string(manifest.version) +
                              (manifest.DegreeRelabeled()
                                   ? " (degree-relabeled)"
                                   : "")});
  table.AddRow({"nodes", grw::Table::Int(static_cast<long long>(
                             manifest.total_nodes))});
  table.AddRow({"edges", grw::Table::Int(static_cast<long long>(
                             manifest.total_half_edges / 2))});
  table.AddRow({"shards", grw::Table::Int(manifest.NumShards())});
  table.AddRow({"total size",
                grw::Table::Num(static_cast<double>(
                                    manifest.TotalShardBytes()) /
                                    (1024.0 * 1024.0), 1) + " MiB"});
  // Log2 degree histogram (bucket b = degrees with bit-width b).
  for (int b = 0; b < grw::kDegreeHistogramBuckets; ++b) {
    if (manifest.degree_histogram[static_cast<size_t>(b)] == 0) continue;
    std::string label;
    if (b <= 1) {
      label = "deg " + std::to_string(b);
    } else {
      label = "deg " + std::to_string(1ull << (b - 1)) + ".." +
              std::to_string((1ull << b) - 1);
    }
    table.AddRow({label,
                  grw::Table::Int(static_cast<long long>(
                      manifest.degree_histogram[static_cast<size_t>(b)]))});
  }
  table.Print();

  grw::Table shards("shards (" + manifest.dir + ")");
  shards.SetHeader({"shard", "rows [first, end)", "half-edges", "MiB",
                    "checksum"});
  for (uint32_t s = 0; s < manifest.NumShards(); ++s) {
    const grw::ShardInfo& info = manifest.shards[s];
    char range[48];
    std::snprintf(range, sizeof(range), "[%llu, %llu)",
                  static_cast<unsigned long long>(info.first_node),
                  static_cast<unsigned long long>(info.first_node +
                                                  info.num_rows));
    char checksum[24];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(info.data_checksum));
    shards.AddRow({grw::Table::Int(s), range,
                   grw::Table::Int(static_cast<long long>(
                       info.num_half_edges)),
                   grw::Table::Num(static_cast<double>(info.file_bytes) /
                                       (1024.0 * 1024.0), 1),
                   checksum});
  }
  shards.Print();
  return 0;
}

int CmdInfo(const grw::Flags& flags) {
  if (flags.positional().size() > 1 &&
      !grw::FindDataset(flags.positional()[1]).has_value() &&
      grw::IsShardManifestPath(flags.positional()[1])) {
    return ShardedInfo(flags.positional()[1], flags.GetBool("verify"));
  }
  const grw::Graph g = LoadPositional(flags, 1);
  grw::Table table("graph statistics");
  table.SetHeader({"quantity", "value"});
  if (flags.positional().size() > 1 &&
      !grw::FindDataset(flags.positional()[1]).has_value() &&
      grw::IsGraphBinaryFile(flags.positional()[1])) {
    const grw::GrwbInfo info =
        grw::InspectGraphBinary(flags.positional()[1]);
    table.AddRow({"format", "grwb v" + std::to_string(info.version) +
                                (info.DegreeRelabeled()
                                     ? " (degree-relabeled)"
                                     : "")});
  }
  table.AddRow({"nodes", grw::Table::Int(g.NumNodes())});
  table.AddRow({"edges", grw::Table::Int(
                             static_cast<long long>(g.NumEdges()))});
  table.AddRow({"max degree", grw::Table::Int(g.MaxDegree())});
  table.AddRow({"avg degree",
                grw::Table::Num(2.0 * static_cast<double>(g.NumEdges()) /
                                    g.NumNodes(), 2)});
  table.AddRow({"wedges |R(2)|", grw::Table::Int(static_cast<long long>(
                                     g.WedgeCount()))});
  table.AddRow({"global clustering",
                grw::Table::Num(grw::GlobalClusteringCoefficient(g), 5)});
  table.Print();
  return 0;
}

int CmdExact(const grw::Flags& flags) {
  grw::Graph g = LoadPositional(flags, 1);
  // ESU classifies every enumerated subgraph with C(k,2) HasEdge probes;
  // the index pays for itself within the first few thousand subgraphs.
  if (!flags.GetBool("no-index")) g.BuildAdjacencyIndex();
  const int k = flags.GetInt32("k", 4);
  grw::WallTimer timer;
  const auto counts = grw::ExactGraphletCounts(g, k);
  const auto conc = grw::ConcentrationsFromCounts(counts);
  grw::Table table("exact " + std::to_string(k) + "-node graphlets (" +
                   grw::Table::Duration(timer.Seconds()) + ")");
  table.SetHeader({"graphlet", "name", "count", "concentration"});
  const auto& order = grw::PaperOrder(k);
  const auto& catalog = grw::GraphletCatalog::ForSize(k);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const int id = order[pos];
    table.AddRow({grw::PaperLabel(k, static_cast<int>(pos)),
                  catalog.Get(id).name,
                  grw::Table::Int(static_cast<long long>(counts[id])),
                  grw::Table::Sci(conc[id])});
  }
  table.Print();
  return 0;
}

int CmdEstimate(const grw::Flags& flags) {
  const bool quiet = flags.GetBool("quiet");
  const int64_t budget_mb = flags.GetInt("resident-budget-mb", 0);
  if (budget_mb < 0) {
    throw std::runtime_error("--resident-budget-mb must be >= 0");
  }
  grw::OpenOptions open;
  open.build_index = false;  // attached below so --no-index can skip it
  open.resident_budget_bytes = static_cast<uint64_t>(budget_mb) << 20;
  const grw::GraphSource source = OpenPositional(flags, 1, open);
  const bool sharded = source.sharded();

  grw::Graph g;  // resident path only; stays empty for sharded sources
  if (!sharded) g = source.graph();
  if (!sharded && !flags.GetBool("no-index")) {
    grw::WallTimer index_timer;
    g.BuildAdjacencyIndex();
    if (!quiet) {
      const grw::AdjacencyIndex& index = *g.adjacency_index();
      std::fprintf(stderr,
                   "[index] %u hubs (deg >= %u), %.1f MiB, built in %s\n",
                   index.num_hubs(), index.hub_threshold(),
                   static_cast<double>(index.bitset_bytes() +
                                       index.signature_bytes()) /
                       (1 << 20),
                   grw::Table::Duration(index_timer.Seconds()).c_str());
    }
  }
  grw::EstimatorConfig config;
  config.k = flags.GetInt32("k", 4);
  config.d = flags.GetInt32("d", config.k == 3 ? 1 : 2);
  config.css = flags.GetBool("css", config.d <= 2);
  config.nb = flags.GetBool("nb", config.k == 3);
  const int64_t steps = flags.GetInt("steps", 100000);
  const bool counts = flags.GetBool("counts");
  if (counts && config.d > 2) {
    throw std::runtime_error(
        "--counts requires --d <= 2 (no closed-form |R(d)| for d >= 3)");
  }
  if (counts && sharded) {
    throw std::runtime_error(
        "--counts needs |R(d)| from the resident graph; sharded sources "
        "report concentrations only");
  }

  // Engine knobs: chains fan out on the persistent pool; --target-nrmse
  // enables convergence-driven early stopping, capped by --max-steps
  // (default: the --steps budget). Validate before any signed value is
  // narrowed into the unsigned engine fields.
  grw::EngineOptions options;
  options.chains = flags.GetInt32("chains", 1);
  if (options.chains < 1) {
    throw std::runtime_error("--chains must be >= 1");
  }
  const int64_t threads = flags.GetInt("threads", 0);
  if (threads < 0) {
    throw std::runtime_error("--threads must be >= 0");
  }
  options.threads = static_cast<unsigned>(threads);
  options.base_seed = flags.GetUInt64("seed", 42);
  options.target_nrmse = flags.GetDouble("target-nrmse", 0.0);
  const int64_t max_steps = flags.GetInt("max-steps", steps);
  if (max_steps < 1) {
    throw std::runtime_error("--steps / --max-steps must be >= 1");
  }
  options.max_steps = static_cast<uint64_t>(max_steps);

  // Crawl scenario: any crawl knob switches every chain onto its own
  // CrawlAccess (LRU neighbor cache + per-query accounting). Estimates
  // are bit-identical to full access; the budget adds a stopping rule on
  // distinct neighbor-list fetches across all chains.
  const int64_t budget_queries = flags.GetInt("budget-queries", 0);
  const int64_t cache_size = flags.GetInt("cache-size", 0);
  const double latency_us = flags.GetDouble("latency-us", 0.0);
  if (budget_queries < 0 || cache_size < 0 || latency_us < 0.0) {
    throw std::runtime_error(
        "--budget-queries / --cache-size / --latency-us must be >= 0");
  }
  // Transient-failure model (cost-only — estimates are unchanged): each
  // fetch attempt fails with --fail-prob, answered by up to
  // --fail-retries retries under exponential backoff starting at
  // --fail-backoff-us (doubling, capped, plus jitter).
  const double fail_prob = flags.GetDouble("fail-prob", 0.0);
  const int fail_retries = flags.GetInt32("fail-retries", 4);
  const double fail_backoff_us = flags.GetDouble("fail-backoff-us", 1000.0);
  if (fail_prob < 0.0 || fail_prob >= 1.0) {
    throw std::runtime_error("--fail-prob must be in [0, 1)");
  }
  if (fail_retries < 0 || fail_backoff_us < 0.0) {
    throw std::runtime_error(
        "--fail-retries / --fail-backoff-us must be >= 0");
  }
  // Presence-based: `--budget-queries 0` / `--latency-us 0` still switch
  // the run onto crawl accounting (with no budget / no latency), exactly
  // like `--cache-size 0` means crawl with an unbounded cache. Any
  // failure-model knob implies crawl too.
  options.crawl.enabled = flags.GetBool("crawl") ||
                          flags.Has("budget-queries") ||
                          flags.Has("cache-size") || flags.Has("latency-us") ||
                          flags.Has("fail-prob") ||
                          flags.Has("fail-retries") ||
                          flags.Has("fail-backoff-us");
  options.crawl.budget_queries = static_cast<uint64_t>(budget_queries);
  options.crawl.cache_entries = static_cast<uint64_t>(cache_size);
  options.crawl.latency_us = latency_us;
  options.crawl.fail_prob = fail_prob;
  options.crawl.fail_max_retries = fail_retries;
  options.crawl.fail_backoff_us = fail_backoff_us;

  // Batched kernel: estimates are bit-identical to the scalar path, so
  // this is purely a throughput knob. --lanes implies --batch.
  const int64_t lanes = flags.GetInt("lanes", 0);
  if (flags.Has("lanes") && lanes < 1) {
    throw std::runtime_error("--lanes must be >= 1");
  }
  options.batch.enabled = flags.GetBool("batch") || flags.Has("lanes");
  if (lanes > 0) {
    options.batch.lanes = static_cast<int>(lanes);
  }

  // Locality seeding: each chain starts inside its affinity shard, so
  // chains fault disjoint working sets under a tight budget. Opt-in
  // because it changes the start distribution (still unbiased, not
  // bit-identical to default seeding).
  options.sharded.locality_seeding = flags.GetBool("locality-seed");
  if (options.sharded.locality_seeding && !sharded) {
    throw std::runtime_error(
        "--locality-seed only applies to sharded graphs");
  }

  if (options.target_nrmse > 0.0 || options.chains > 1) {
    // Fix the round slicing here so --quiet (which only drops the
    // progress callback) cannot change the batch structure and thus the
    // reported standard errors.
    options.round_steps =
        grw::EngineOptions::DefaultRoundSteps(options.max_steps);
  }
  if (!quiet && (options.target_nrmse > 0.0 || options.chains > 1)) {
    options.on_progress = [](const grw::EngineProgress& p) {
      std::fprintf(stderr,
                   "[engine] round %d: %llu/%llu steps/chain x %d chains, "
                   "%.2fM steps/s, max rel err %.4f\n",
                   p.round,
                   static_cast<unsigned long long>(p.steps_per_chain),
                   static_cast<unsigned long long>(p.max_steps), p.chains,
                   p.steps_per_second / 1e6, p.max_rel_error);
    };
  }

  grw::EstimationEngine engine =
      sharded ? grw::EstimationEngine(source.shards(), config, options)
              : grw::EstimationEngine(g, config, options);
  const grw::EngineResult run = engine.Run();

  if (flags.GetBool("raw")) {
    // Machine-readable output: one `label value` line per graphlet in
    // paper order, %.17g so the bytes survive a JSON round trip and the
    // CI serve smoke can diff this against `grw query --raw`.
    const auto& order = grw::PaperOrder(config.k);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      std::printf("%s %.17g\n",
                  grw::PaperLabel(config.k, static_cast<int>(pos)).c_str(),
                  run.merged.concentrations[order[pos]]);
    }
    return 0;
  }

  std::string title =
      config.Name() + ", " +
      std::to_string(run.steps_per_chain) + " steps x " +
      std::to_string(options.chains) + " chain(s), " +
      grw::Table::Duration(run.seconds);
  if (options.target_nrmse > 0.0) {
    title += run.converged ? ", converged" : ", NOT converged";
  }
  if (options.crawl.budget_queries > 0) {
    title += run.budget_exhausted ? ", budget exhausted" : ", under budget";
  }
  grw::Table table(title);
  table.SetHeader({"graphlet", "name",
                   counts ? "estimated count" : "estimated concentration",
                   "conc batch SE", "chain stddev"});
  const uint64_t relationship_edges =
      counts ? grw::RelationshipEdgeCount(g, config.d) : 0;
  const std::vector<double> merged_values =
      counts ? grw::CountEstimatesFromResult(run.merged, relationship_edges)
             : run.merged.concentrations;
  // Per-chain values in the same units as the estimate column, so the
  // across-chain stddev is directly comparable to it.
  std::vector<std::vector<double>> chain_values;
  chain_values.reserve(run.per_chain.size());
  for (const auto& chain : run.per_chain) {
    chain_values.push_back(
        counts ? grw::CountEstimatesFromResult(chain, relationship_edges)
               : chain.concentrations);
  }
  const auto& order = grw::PaperOrder(config.k);
  const auto& catalog = grw::GraphletCatalog::ForSize(config.k);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const int id = order[pos];
    std::vector<double> values;
    for (const auto& chain : chain_values) {
      values.push_back(chain[id]);
    }
    table.AddRow({grw::PaperLabel(config.k, static_cast<int>(pos)),
                  catalog.Get(id).name, grw::Table::Sci(merged_values[id]),
                  run.standard_errors.empty()
                      ? "-"
                      : grw::Table::Sci(run.standard_errors[id]),
                  options.chains > 1
                      ? grw::Table::Sci(grw::SampleStddev(values))
                      : "-"});
  }
  table.Print();
  if (!quiet) {
    std::printf("throughput: %.2fM steps/s across %d chain(s)",
                run.steps_per_second / 1e6, options.chains);
    if (options.target_nrmse > 0.0) {
      std::printf("; %s at %llu steps/chain (target %.3f, reached %.4f)",
                  run.converged ? "converged" : "step cap hit",
                  static_cast<unsigned long long>(run.steps_per_chain),
                  options.target_nrmse, run.max_rel_error);
    }
    std::printf("\n");
  }
  if (sharded && !quiet) {
    const grw::ShardStats& s = run.shards;
    std::string budget = "unbounded budget";
    if (s.budget_bytes > 0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.1f MiB budget",
                    static_cast<double>(s.budget_bytes) / (1024.0 * 1024.0));
      budget = buf;
    }
    std::printf(
        "shard residency: %llu faults, %llu hits (%.1f%% hit rate), "
        "%llu evictions; peak %.1f of %.1f MiB resident (%s, %u shards)\n",
        static_cast<unsigned long long>(s.faults),
        static_cast<unsigned long long>(s.hits), 100.0 * s.HitRate(),
        static_cast<unsigned long long>(s.evictions),
        static_cast<double>(s.peak_resident_bytes) / (1024.0 * 1024.0),
        static_cast<double>(
            source.shards().manifest().TotalShardBytes()) /
            (1024.0 * 1024.0),
        budget.c_str(), source.shards().NumShards());
  }
  if (options.crawl.enabled && !quiet) {
    const grw::CrawlStats& a = run.access;
    std::printf(
        "crawl cost: %llu distinct queries (%llu fetches, %llu re-fetches "
        "after eviction), %.1f%% cache hit rate, %llu evictions\n",
        static_cast<unsigned long long>(a.distinct_fetches),
        static_cast<unsigned long long>(a.fetches),
        static_cast<unsigned long long>(a.Refetches()),
        100.0 * a.HitRate(),
        static_cast<unsigned long long>(a.evictions));
    if (options.crawl.fail_prob > 0.0 || a.transient_failures > 0) {
      std::printf(
          "crawl resilience: %llu transient failures -> %llu retries, "
          "%llu giveups (slow-path fallbacks), %.2fs simulated backoff\n",
          static_cast<unsigned long long>(a.transient_failures),
          static_cast<unsigned long long>(a.retries),
          static_cast<unsigned long long>(a.giveups),
          a.backoff_latency_us / 1e6);
    }
    if (options.crawl.latency_us > 0.0) {
      // Chains crawl concurrently, so simulated API latency amortizes
      // across them the way wall-clock does.
      const double sim_seconds =
          a.simulated_latency_us / 1e6 / options.chains;
      const double effective_seconds = run.seconds + sim_seconds;
      std::printf(
          "simulated latency: %.2fs/chain at %.0fus/query -> effective "
          "%.3fM steps/s\n",
          sim_seconds, options.crawl.latency_us,
          effective_seconds > 0.0
              ? static_cast<double>(run.merged.steps) / effective_seconds /
                    1e6
              : 0.0);
    }
    if (options.crawl.budget_queries > 0) {
      std::printf("budget: %s — %llu of %llu budgeted distinct queries "
                  "spent, %llu total steps\n",
                  run.budget_exhausted ? "exhausted" : "not exhausted",
                  static_cast<unsigned long long>(
                      run.access.distinct_fetches),
                  static_cast<unsigned long long>(
                      options.crawl.budget_queries),
                  static_cast<unsigned long long>(run.merged.steps));
    }
  }
  return 0;
}

int CmdQuery(const grw::Flags& flags) {
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int64_t port = flags.GetInt("port", 7411);
  if (port < 1 || port > 65535) {
    throw std::runtime_error("--port must be in [1, 65535]");
  }

  std::string line = flags.GetString("send", "");
  const bool passthrough = flags.Has("send");
  if (!passthrough) {
    if (flags.positional().size() < 2) return Usage();
    // Build the ESTIMATE line from the same flags `estimate` takes.
    // Only fields the user actually set go on the wire — the protocol's
    // defaults are the CLI's defaults, so omission means the same thing
    // on both sides and the served result stays bit-identical.
    line = "ESTIMATE graph=" + flags.positional()[1];
    line += " k=" + std::to_string(flags.GetInt("k", 4));
    if (flags.Has("d")) {
      line += " d=" + std::to_string(flags.GetInt("d", 2));
    }
    if (flags.Has("css")) {
      line += std::string(" css=") + (flags.GetBool("css") ? "1" : "0");
    }
    if (flags.Has("nb")) {
      line += std::string(" nb=") + (flags.GetBool("nb") ? "1" : "0");
    }
    // The protocol's `steps` is the engine step cap, i.e. the CLI's
    // --max-steps (defaulting to --steps).
    line += " steps=" + std::to_string(flags.GetInt(
                            "max-steps", flags.GetInt("steps", 100000)));
    line += " seed=" + std::to_string(flags.GetInt("seed", 42));
    line += " chains=" + std::to_string(flags.GetInt("chains", 1));
    char buf[64];
    if (flags.Has("target-nrmse")) {
      std::snprintf(buf, sizeof(buf), "%.17g",
                    flags.GetDouble("target-nrmse", 0.0));
      line += std::string(" target_nrmse=") + buf;
    }
    if (flags.GetBool("crawl")) line += " crawl=1";
    if (flags.Has("budget-queries")) {
      line += " budget=" + std::to_string(flags.GetInt("budget-queries", 0));
    }
    if (flags.Has("cache-size")) {
      line += " cache=" + std::to_string(flags.GetInt("cache-size", 0));
    }
    if (flags.Has("deadline-ms")) {
      std::snprintf(buf, sizeof(buf), "%.17g",
                    flags.GetDouble("deadline-ms", 0.0));
      line += std::string(" deadline_ms=") + buf;
    }
    if (flags.Has("tenant")) {
      line += " tenant=" + flags.GetString("tenant", "");
    }
  }

  // Bounded waits by default: a hung daemon yields an error, not a
  // wedged CLI. -1 restores the old wait-forever behavior.
  grw::serve::QueryClient::Options client_options;
  client_options.connect_timeout_ms =
      flags.GetInt32("connect-timeout-ms", client_options.connect_timeout_ms);
  client_options.read_timeout_ms =
      flags.GetInt32("read-timeout-ms", client_options.read_timeout_ms);
  grw::serve::RetryPolicy policy;
  policy.max_retries = flags.GetInt32("retries", policy.max_retries);
  if (policy.max_retries < 0) {
    throw std::runtime_error("--retries must be >= 0");
  }

  // Transport failures reconnect and resend; RETRY_AFTER load sheds back
  // off per the server's hint. Any other error response is final.
  const grw::serve::QueryOutcome outcome = grw::serve::QueryWithRetry(
      host, static_cast<int>(port), line, client_options, policy);
  if (outcome.transport_error) {
    std::string what = outcome.error;
    if (outcome.retries > 0) {
      what += " (after " + std::to_string(outcome.attempts) + " attempts)";
    }
    throw std::runtime_error(what);
  }
  const std::string& response = outcome.response;
  const auto parsed = grw::serve::ParseJson(response);

  if (passthrough) {
    // Raw protocol passthrough: echo the response line verbatim; the
    // exit code still reflects the `ok` field for scripting.
    std::printf("%s\n", response.c_str());
    const grw::serve::JsonValue* ok = parsed ? parsed->Find("ok") : nullptr;
    return ok != nullptr && ok->IsTrue() ? 0 : 1;
  }
  if (!parsed) {
    throw std::runtime_error("unparseable response: " + response);
  }
  const grw::serve::JsonValue* ok = parsed->Find("ok");
  if (ok == nullptr || !ok->IsTrue()) {
    const grw::serve::JsonValue* err = parsed->Find("error");
    std::fprintf(stderr, "server error: %s\n",
                 err != nullptr && !err->str.empty() ? err->str.c_str()
                                                     : response.c_str());
    return 1;
  }
  const grw::serve::JsonValue* labels = parsed->Find("labels");
  const grw::serve::JsonValue* conc = parsed->Find("concentrations");
  if (labels == nullptr || conc == nullptr ||
      labels->items.size() != conc->items.size()) {
    throw std::runtime_error("malformed response: " + response);
  }

  if (flags.GetBool("raw")) {
    // Echo the server's number *bytes* (the parser keeps the raw text):
    // no reformatting means this diffs clean against `estimate --raw`.
    for (size_t i = 0; i < labels->items.size(); ++i) {
      std::printf("%s %s\n", labels->items[i].str.c_str(),
                  conc->items[i].raw.c_str());
    }
    return 0;
  }

  const auto num = [&parsed](const char* key, double fallback) {
    const grw::serve::JsonValue* v = parsed->Find(key);
    return v != nullptr && v->type == grw::serve::JsonValue::Type::kNumber
               ? v->number
               : fallback;
  };
  const grw::serve::JsonValue* method = parsed->Find("method");
  const int k = static_cast<int>(num("k", 0));
  std::string title =
      (method != nullptr ? method->str : std::string("estimate")) + ", " +
      std::to_string(static_cast<long long>(num("steps_per_chain", 0))) +
      " steps x " +
      std::to_string(static_cast<long long>(num("chains", 1))) +
      " chain(s), served in " + grw::Table::Duration(num("seconds", 0.0));
  const grw::serve::JsonValue* cancelled = parsed->Find("cancelled");
  if (cancelled != nullptr && cancelled->IsTrue()) {
    title += ", deadline cancelled";
  }
  const grw::serve::JsonValue* exhausted = parsed->Find("budget_exhausted");
  if (exhausted != nullptr && exhausted->IsTrue()) {
    title += ", budget exhausted";
  }
  grw::Table table(title);
  table.SetHeader({"graphlet", "name", "estimated concentration"});
  const bool have_catalog = k >= 3 && k <= grw::kMaxGraphletSize;
  const auto* order = have_catalog ? &grw::PaperOrder(k) : nullptr;
  for (size_t i = 0; i < labels->items.size(); ++i) {
    std::string name = "-";
    if (have_catalog && i < order->size()) {
      name = grw::GraphletCatalog::ForSize(k)
                 .Get((*order)[i])
                 .name;
    }
    table.AddRow({labels->items[i].str, name,
                  grw::Table::Sci(conc->items[i].number)});
  }
  table.Print();
  if (parsed->Find("distinct_queries") != nullptr) {
    std::printf("crawl cost: %llu distinct queries (%llu fetches)\n",
                static_cast<unsigned long long>(num("distinct_queries", 0)),
                static_cast<unsigned long long>(num("fetches", 0)));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const grw::Flags flags(argc, argv);
  const std::string& cmd = flags.positional().empty()
                               ? std::string()
                               : flags.positional()[0];
  try {
    if (cmd == "datasets") return CmdDatasets();
    if (cmd == "generate") return CmdGenerate(flags);
    if (cmd == "convert") return CmdConvert(flags);
    if (cmd == "shard") return CmdShard(flags);
    if (cmd == "info") return CmdInfo(flags);
    if (cmd == "exact") return CmdExact(flags);
    if (cmd == "estimate") return CmdEstimate(flags);
    if (cmd == "query") return CmdQuery(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
