// grw_serve — the estimation-as-a-service daemon.
//
//   grw_serve [--host H] [--port P] [--workers N] [--queue N]
//             [--engine-threads T] [--tenant-budget B] [--max-steps N]
//             [--max-chains N] [--retry-after-ms MS] [--no-index]
//             [--no-verify] [--resident-budget-mb M] <id>=<graph> ...
//
// Loads every <id>=<graph> binding into a resident SnapshotRegistry
// through GraphSource::Open (`.grwb` snapshots mmap in microseconds and
// share warm adjacency indexes across ids; sharded out-of-core graphs —
// a `grw shard` output directory or its MANIFEST.grws — serve under the
// --resident-budget-mb shard-LRU budget; text edge lists and registry
// dataset names work too), then answers the line/JSON protocol of
// src/serve/protocol.h on a
// TCP socket until SIGTERM/SIGINT, which triggers a graceful drain:
// in-flight and queued requests finish, new ones are refused, and the
// daemon exits 0 after printing how much it served.
//
//   --port 0          ephemeral port; the bound port is printed on the
//                     "listening" line (scripts parse it)
//   --workers N       concurrent estimation jobs (default 4)
//   --queue N         admission-control queue bound (default 64)
//   --engine-threads  pool threads per job, 0 = all (default 0: jobs
//                     multiplex round-by-round on the shared ChainPool)
//   --tenant-budget B lifetime distinct-query allowance per tenant id
//                     (0 = unlimited)
//   --max-steps /     per-request caps enforced at parse time
//   --max-chains
//   --retry-after-ms  backoff hint in RETRY_AFTER load-shed responses
//                     (default 50); corrupt .grwb snapshots are
//                     quarantined at startup unless --no-verify
//   --resident-budget-mb  resident-byte budget for each sharded
//                     binding's shard LRU (0 = unbounded). Monolithic
//                     bindings ignore it. Corrupt shards quarantine the
//                     whole binding, exactly like corrupt .grwb files.
//
// Try it:
//   grw_serve --port 7411 web=web.grwb &
//   grw query web --port 7411 --k 4 --steps 100000
//   printf 'PING\nLIST\n' | nc 127.0.0.1 7411

#include <csignal>
#include <cstdio>
#include <ctime>

#include "eval/datasets.h"
#include "graph/format.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/flags.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage() {
  std::fputs(
      "usage: grw_serve [--host H] [--port P] [--workers N] [--queue N]\n"
      "                 [--engine-threads T] [--tenant-budget B]\n"
      "                 [--max-steps N] [--max-chains N] [--no-index]\n"
      "                 [--no-verify] [--retry-after-ms MS]\n"
      "                 [--resident-budget-mb M]\n"
      "                 <id>=<graph> [<id>=<graph> ...]\n"
      "  <graph> is a .grwb snapshot (preferred: zero-copy mmap), a\n"
      "  sharded graph (a `grw shard` output dir or its MANIFEST.grws;\n"
      "  served out-of-core under --resident-budget-mb), a text edge\n"
      "  list, or a dataset name from `grw datasets`.\n"
      "  Snapshot payloads are checksum-verified at registration; corrupt\n"
      "  snapshots/shards are quarantined (skipped with a log line).\n"
      "  --no-verify trusts the files and skips the full read.\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  if (flags.positional().empty()) return Usage();

  grw::serve::ServerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  options.port =
      static_cast<int>(flags.GetIntInRange("port", 7411, 0, 65535));
  options.scheduler.workers = flags.GetInt32("workers", 4);
  options.scheduler.queue_limit = flags.GetSize("queue", 64);
  options.scheduler.engine_threads = flags.GetUnsigned("engine-threads", 0);
  options.scheduler.tenant_budget =
      flags.GetUInt64("tenant-budget", 0);
  options.scheduler.limits.max_steps =
      flags.GetUInt64("max-steps", 50000000);
  options.scheduler.limits.max_chains =
      flags.GetInt32("max-chains", 256);
  // Backoff hint shed clients receive in RETRY_AFTER responses.
  options.scheduler.retry_after_ms = flags.GetDouble("retry-after-ms", 50.0);
  if (options.scheduler.retry_after_ms < 0.0) {
    std::fprintf(stderr, "grw_serve: --retry-after-ms must be >= 0\n");
    return 2;
  }
  const bool build_index = !flags.GetBool("no-index");
  const bool verify = !flags.GetBool("no-verify");
  const uint64_t resident_budget_bytes =
      flags.GetUInt64("resident-budget-mb", 0) << 20;

  grw::serve::SnapshotRegistry registry;
  size_t quarantined = 0;
  try {
    for (const std::string& binding : flags.positional()) {
      const size_t eq = binding.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == binding.size()) {
        std::fprintf(stderr,
                     "grw_serve: bad binding '%s' (expected id=graph)\n",
                     binding.c_str());
        return 2;
      }
      const std::string id = binding.substr(0, eq);
      const std::string path = binding.substr(eq + 1);
      if (grw::FindDataset(path).has_value()) {
        grw::Graph g = grw::MakeDatasetByName(path, 1.0);
        if (build_index) g.BuildAdjacencyIndex();
        registry.RegisterGraph(id, std::move(g), path);
      } else {
        try {
          registry.Register(id, path, build_index, verify,
                            resident_budget_bytes);
        } catch (const grw::SnapshotCorruptError& e) {
          // Quarantine: the id stays unbound (queries for it get a
          // clean "unknown graph" error), the file(s) — monolithic or
          // any one bad shard — stay on disk for inspection, and the
          // daemon keeps serving the healthy rest.
          std::fprintf(stderr, "[serve] QUARANTINED %s: %s\n", id.c_str(),
                       e.what());
          ++quarantined;
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "grw_serve: %s\n", e.what());
    return 1;
  }
  if (quarantined > 0 && registry.size() == 0) {
    std::fprintf(stderr,
                 "grw_serve: all %zu snapshot(s) quarantined, refusing to "
                 "serve nothing\n",
                 quarantined);
    return 1;
  }
  for (const auto& entry : registry.List()) {
    std::fprintf(stderr, "[serve] %s: %s (n=%llu m=%llu)\n",
                 entry.id.c_str(), entry.path.c_str(),
                 static_cast<unsigned long long>(entry.nodes),
                 static_cast<unsigned long long>(entry.edges));
  }

  grw::serve::ServeServer server(&registry, options);
  try {
    server.Start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "grw_serve: %s\n", e.what());
    return 1;
  }
  // Scripts parse this line (--port 0 binds an ephemeral port).
  std::printf("grw_serve listening on %s:%d (%zu graphs, %d workers)\n",
              options.host.c_str(), server.port(), registry.size(),
              options.scheduler.workers);
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (!g_stop) {
    timespec nap{0, 100'000'000};  // 100ms; signals also interrupt it
    nanosleep(&nap, nullptr);
  }

  server.Stop();  // graceful: drains queued + in-flight requests
  const grw::serve::ServeScheduler::Stats stats = server.stats();
  std::printf(
      "grw_serve drained: %llu requests answered (%llu ok, %llu errors, "
      "%llu shed on overload), shutting down\n",
      static_cast<unsigned long long>(stats.completed + stats.errors),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.errors),
      static_cast<unsigned long long>(stats.rejected_queue));
  return 0;
}
