#!/usr/bin/env python3
"""Repo-invariant linter: greppable project rules, enforced in CI.

Checks (each is a function named check_*; `--list` prints them):

  raw-sync          no std::mutex / std::condition_variable (or recursive/
                    shared variants) outside src/util/sync.h — all locking
                    goes through the annotated wrappers so the Clang
                    thread-safety analysis sees it.
  detach            no std::thread::detach(): a detached thread outlives
                    scope invisibly; everything in this repo joins.
  naked-new-array   no `new T[n]`: buffers are std::vector / std::string /
                    std::unique_ptr<T[]>, never manually delete[]'d.
  unchecked-cast    no `static_cast<T>(flags.GetInt(...))`: the typed
                    range-checked getters (GetInt32 / GetUnsigned /
                    GetUInt64 / GetSize / GetIntInRange) exist precisely so
                    narrowing is a diagnostic, not a silent truncation.
  tests-registered  every tests/*.cpp defines at least one TEST — a test
                    file the glob registers but that asserts nothing is a
                    silently-passing hole.
  bench-json        every plain-main bench/*.cpp calls MaybeWriteJson so
                    it can emit the BENCH_*.json perf-trajectory format
                    (Google Benchmark harnesses are exempt: they have
                    --benchmark_format=json).
  doc-refs          backtick-quoted repo paths in CHANGES.md / ROADMAP.md
                    (src/, tests/, bench/, tools/, docs/, examples/
                    prefixes) must resolve — stale references rot fast.
  raw-posix-io      no ::read / ::write / ::send / ::recv / ::connect
                    outside src/util/posix_io.cpp — socket and file IO
                    goes through grw::io (EINTR retry, partial-write
                    loops, timeouts, fault-injection sites) so no call
                    path silently skips the hardening.
  graphsource-open  no direct LoadGraph / LoadGraphBinary call sites
                    outside the format layer itself, GraphSource, the
                    loader microbenchmark, and tests/ — everything else
                    opens graphs through GraphSource::Open so text,
                    monolithic .grwb, and sharded manifests all work at
                    every entry point.

Usage:
  tools/lint_invariants.py [--root DIR]   lint the tree (exit 1 on findings)
  tools/lint_invariants.py --self-test    seed each violation in a scratch
                                          tree and assert it is detected
"""

import argparse
import os
import re
import sys
import tempfile

CODE_DIRS = ["src", "tests", "bench", "tools", "examples"]
CODE_EXTENSIONS = {".h", ".cpp"}
SYNC_HEADER = os.path.join("src", "util", "sync.h")
POSIX_IO_IMPL = os.path.join("src", "util", "posix_io.cpp")

RAW_SYNC_RE = re.compile(
    r"std::(?:mutex|condition_variable(?:_any)?|recursive_mutex|"
    r"shared_mutex|timed_mutex)\b")
DETACH_RE = re.compile(r"\.\s*detach\s*\(")
NEW_ARRAY_RE = re.compile(r"\bnew\s+[A-Za-z_][\w:<>,\s]*\[")
UNCHECKED_CAST_RE = re.compile(
    r"static_cast<[^<>]+>\s*\(\s*[\w.\->]*\bGetInt\s*\(")
TEST_MACRO_RE = re.compile(r"\b(?:TEST|TEST_F|TEST_P|TYPED_TEST)\s*\(")
GBENCH_INCLUDE_RE = re.compile(r'#include\s+[<"]benchmark/benchmark\.h[>"]')
DOC_REF_RE = re.compile(r"`((?:src|tests|bench|tools|docs|examples)/[^`]+)`")
RAW_POSIX_IO_RE = re.compile(r"::(?:read|write|send|recv|connect)\s*\(")
GRAPHSOURCE_RE = re.compile(r"\bLoadGraph(?:Binary)?\s*\(")
FORMAT_HEADER = os.path.join("src", "graph", "format.h")
FORMAT_IMPL = os.path.join("src", "graph", "format.cpp")
GRAPHSOURCE_IMPL = os.path.join("src", "graph", "source.cpp")
LOADER_BENCH = os.path.join("bench", "bench_loader.cpp")


def strip_comments(lines):
    """Blanks out // and /* */ comment text, preserving line structure."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            elif line.startswith("//", i):
                break
            elif line.startswith("/*", i):
                in_block = True
                i += 2
            else:
                result.append(line[i])
                i += 1
        out.append("".join(result))
    return out


def iter_source_files(root):
    for top in CODE_DIRS:
        top_path = os.path.join(root, top)
        for dirpath, _, names in os.walk(top_path):
            for name in sorted(names):
                if os.path.splitext(name)[1] in CODE_EXTENSIONS:
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root)


def read_code_lines(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8",
              errors="replace") as f:
        return strip_comments(f.read().splitlines())


def grep_rule(root, pattern, message, exclude=()):
    findings = []
    for rel in iter_source_files(root):
        if rel in exclude:
            continue
        for lineno, line in enumerate(read_code_lines(root, rel), start=1):
            if pattern.search(line):
                findings.append((rel, lineno, message))
    return findings


def check_raw_sync(root):
    return grep_rule(
        root, RAW_SYNC_RE,
        "raw std::mutex/std::condition_variable — use grw::Mutex/CondVar "
        "from util/sync.h (annotated, lint-visible)",
        exclude=(SYNC_HEADER,))


def check_detach(root):
    return grep_rule(
        root, DETACH_RE,
        "thread .detach() — join it; detached threads outlive their state")


def check_naked_new_array(root):
    return grep_rule(
        root, NEW_ARRAY_RE,
        "naked new[] — use std::vector or std::unique_ptr<T[]>")


def check_unchecked_cast(root):
    return grep_rule(
        root, UNCHECKED_CAST_RE,
        "static_cast around Flags::GetInt — use the range-checked typed "
        "getter (GetInt32/GetUnsigned/GetUInt64/GetSize/GetIntInRange)")


def check_tests_registered(root):
    findings = []
    tests_dir = os.path.join(root, "tests")
    for name in sorted(os.listdir(tests_dir)):
        if not name.endswith(".cpp"):
            continue
        rel = os.path.join("tests", name)
        body = "\n".join(read_code_lines(root, rel))
        if not TEST_MACRO_RE.search(body):
            findings.append((rel, 1,
                             "no TEST/TEST_F macro — the CMake glob would "
                             "register an empty test binary"))
    return findings


def check_bench_json(root):
    findings = []
    bench_dir = os.path.join(root, "bench")
    for name in sorted(os.listdir(bench_dir)):
        if not name.endswith(".cpp"):
            continue
        rel = os.path.join("bench", name)
        with open(os.path.join(root, rel), encoding="utf-8",
                  errors="replace") as f:
            raw = f.read()
        if GBENCH_INCLUDE_RE.search(raw):
            continue  # Google Benchmark harness: has --benchmark_format
        if "MaybeWriteJson" not in raw:
            findings.append((rel, 1,
                             "bench never calls MaybeWriteJson — every "
                             "plain-main bench must support --json"))
    return findings


def _expand_braces(path):
    """`src/x.{h,cpp}` -> [src/x.h, src/x.cpp]; no braces -> [path]."""
    m = re.match(r"^(.*)\{([^{}]+)\}(.*)$", path)
    if not m:
        return [path]
    return [m.group(1) + alt + m.group(3) for alt in m.group(2).split(",")]


def _ref_resolves(root, ref):
    ref = re.sub(r":\d+(-\d+)?$", "", ref)  # strip :line / :line-line
    if any(ch in ref for ch in "*?"):
        return True  # glob-style mention, not a concrete path
    for candidate in _expand_braces(ref):
        full = os.path.join(root, candidate)
        if os.path.exists(full):
            continue
        # `tools/grw_serve` names the binary; its source resolves it.
        if any(os.path.exists(full + ext) for ext in (".cpp", ".h", ".py")):
            continue
        return False
    return True


def check_doc_refs(root):
    findings = []
    for doc in ("CHANGES.md", "ROADMAP.md"):
        doc_path = os.path.join(root, doc)
        if not os.path.exists(doc_path):
            continue
        with open(doc_path, encoding="utf-8", errors="replace") as f:
            for lineno, line in enumerate(f, start=1):
                for ref in DOC_REF_RE.findall(line):
                    if not _ref_resolves(root, ref):
                        findings.append(
                            (doc, lineno,
                             f"reference `{ref}` does not resolve to a "
                             "file or directory"))
    return findings


def check_raw_posix_io(root):
    return grep_rule(
        root, RAW_POSIX_IO_RE,
        "raw ::read/::write/::send/::recv/::connect — route through "
        "grw::io (ReadSome/WriteAll/ConnectWithTimeout in util/posix_io.h) "
        "for EINTR retry, partial-write handling, timeouts, and fault "
        "injection",
        exclude=(POSIX_IO_IMPL,))


def check_graphsource_open(root):
    findings = []
    allowed = {FORMAT_HEADER, FORMAT_IMPL, GRAPHSOURCE_IMPL, LOADER_BENCH}
    for rel in iter_source_files(root):
        if rel in allowed:
            continue
        # tests/ may exercise the deprecated aliases (alias-equivalence
        # coverage is exactly what keeps them honest).
        if rel.split(os.sep)[0] == "tests":
            continue
        for lineno, line in enumerate(read_code_lines(root, rel), start=1):
            if GRAPHSOURCE_RE.search(line):
                findings.append((
                    rel, lineno,
                    "direct LoadGraph/LoadGraphBinary call — open graphs "
                    "through GraphSource::Open so sharded manifests work "
                    "everywhere"))
    return findings


ALL_CHECKS = [
    ("raw-sync", check_raw_sync),
    ("detach", check_detach),
    ("naked-new-array", check_naked_new_array),
    ("unchecked-cast", check_unchecked_cast),
    ("tests-registered", check_tests_registered),
    ("bench-json", check_bench_json),
    ("doc-refs", check_doc_refs),
    ("raw-posix-io", check_raw_posix_io),
    ("graphsource-open", check_graphsource_open),
]


def run_checks(root):
    findings = []
    for name, check in ALL_CHECKS:
        for rel, lineno, message in check(root):
            findings.append(f"{rel}:{lineno}: [{name}] {message}")
    return findings


# ------------------------------------------------------------ self-test --

def _write(root, rel, content):
    full = os.path.join(root, rel)
    os.makedirs(os.path.dirname(full), exist_ok=True)
    with open(full, "w", encoding="utf-8") as f:
        f.write(content)


def _make_clean_tree(root):
    _write(root, SYNC_HEADER, "// the one legitimate home\nstd::mutex mu;\n")
    _write(root, POSIX_IO_IMPL,
           "// the one legitimate home for raw syscalls\n"
           "ssize_t n = ::read(fd, buf, cap);\n")
    _write(root, "src/a.cpp",
           "// comment mentioning std::mutex and static_cast<int>(f.GetInt(\n"
           "int x = f.GetInt32(\"n\", 1);\n")
    _write(root, "tests/a_test.cpp", "TEST(A, B) {}\n")
    _write(root, "bench/bench_a.cpp",
           "int main() { grw::bench::MaybeWriteJson(flags, \"a\", c, m); }\n")
    _write(root, "bench/bench_micro_b.cpp",
           "#include <benchmark/benchmark.h>\n")
    _write(root, "tools/t.cpp", "int main() {}\n")
    _write(root, "examples/e.cpp", "int main() {}\n")
    _write(root, "CHANGES.md",
           "- touched `src/a.cpp` and `src/x.{h,cpp}` and `tools/t`\n")
    _write(root, "src/x.h", "\n")
    _write(root, "src/x.cpp", "\n")
    _write(root, "ROADMAP.md", "see `tests/a_test.cpp`\n")


def self_test():
    failures = []

    def expect(condition, label):
        print(f"  {'ok' if condition else 'FAIL'}: {label}")
        if not condition:
            failures.append(label)

    with tempfile.TemporaryDirectory() as root:
        _make_clean_tree(root)
        clean = run_checks(root)
        expect(clean == [], "clean tree produces no findings")

        seeds = {
            "raw-sync": ("src/bad_sync.cpp", "std::mutex naked;\n"),
            "detach": ("src/bad_detach.cpp", "worker.detach();\n"),
            "naked-new-array": ("src/bad_new.cpp",
                                "int* p = new int[n];\n"),
            "unchecked-cast": ("src/bad_cast.cpp",
                               "int n = static_cast<int>(flags.GetInt(\"n\","
                               " 1));\n"),
            "tests-registered": ("tests/empty_test.cpp",
                                 "// no test macros here\n"),
            "bench-json": ("bench/bench_nojson.cpp", "int main() {}\n"),
            "doc-refs": ("CHANGES.md",
                         "- see `src/ghost_file.cpp` for details\n"),
            "raw-posix-io": ("src/bad_io.cpp",
                             "ssize_t n = ::write(fd, data, len);\n"),
            "graphsource-open": ("src/bad_open.cpp",
                                 "grw::Graph g = grw::LoadGraphBinary(p);"
                                 "\n"),
        }
        for rule, (rel, content) in seeds.items():
            with tempfile.TemporaryDirectory() as seeded:
                _make_clean_tree(seeded)
                _write(seeded, rel, content)
                findings = run_checks(seeded)
                hit = any(f"[{rule}]" in f and rel in f for f in findings)
                expect(hit, f"seeded {rel} trips [{rule}]")
                others = [f for f in findings if f"[{rule}]" not in f]
                expect(others == [], f"[{rule}] seed trips nothing else")

    if failures:
        print(f"self-test: {len(failures)} FAILED")
        return 1
    print("self-test: all rules detect their seeded violations")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root",
                        default=os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__))),
                        help="repo root to lint (default: this script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule detects a seeded violation")
    parser.add_argument("--list", action="store_true",
                        help="list check names and exit")
    args = parser.parse_args()

    if args.list:
        for name, _ in ALL_CHECKS:
            print(name)
        return 0
    if args.self_test:
        return self_test()

    findings = run_checks(args.root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)")
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
